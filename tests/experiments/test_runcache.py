"""Property-style tests for the content-addressed run cache.

The spec hash is the identity on which sweep resume and cross-sweep
caching rest: it must be invariant under every spelling of the *same*
scenario (dict key order, shorthand vs expanded components, display
names, omitted defaults) and must change whenever any resolved leaf
changes — including the ``faults`` section and ``data.materialization``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import runcache
from repro.experiments.runcache import (
    CACHE_VERSION,
    RunCache,
    canonical_spec,
    grid_hash,
    spec_hash,
)
from repro.experiments.scenario import Scenario


def base_spec(**extra):
    spec = {
        "name": "hash-probe",
        "num_workers": 6,
        "seed": 0,
        "data": {
            "name": "synthetic-mnist",
            "params": {"num_train": 120, "num_test": 60, "image_size": 8},
            "flatten": True,
        },
        "model": {"name": "lr", "params": {"input_dim": 64, "hidden": 8, "num_classes": 10}},
        "timing": {"base_local_time": 2.0},
        "training": {"max_rounds": 3, "max_eval_samples": 60},
    }
    spec.update(extra)
    return spec


def reorder(node, rng):
    """Recursively rebuild mappings with shuffled key insertion order."""
    if isinstance(node, dict):
        keys = list(node)
        rng.shuffle(keys)
        return {key: reorder(node[key], rng) for key in keys}
    if isinstance(node, list):
        return [reorder(value, rng) for value in node]
    return node


class TestSpecHashInvariance:
    def test_key_order_does_not_matter(self):
        spec = base_spec()
        flipped = json.loads(json.dumps(reorder(spec, __import__("random").Random(7))))
        assert spec_hash(spec) == spec_hash(flipped)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_any_key_order_hashes_identically(self, seed):
        import random

        spec = base_spec()
        shuffled = reorder(spec, random.Random(seed))
        assert spec_hash(spec) == spec_hash(shuffled)

    def test_shorthand_and_expanded_components_hash_equal(self):
        shorthand = base_spec(mechanism="air_fedga", partition="label-skew")
        expanded = base_spec(
            mechanism={"name": "air_fedga", "params": {}},
            partition={"name": "label-skew", "params": {}},
        )
        assert spec_hash(shorthand) == spec_hash(expanded)

    def test_faults_shorthand_hashes_like_expanded(self):
        shorthand = base_spec(faults="bernoulli")
        expanded = base_spec(
            faults={"clientstate": {"name": "bernoulli", "params": {}}}
        )
        assert spec_hash(shorthand) == spec_hash(expanded)

    def test_omitted_sections_hash_like_explicit_defaults(self):
        bare = base_spec()
        explicit = base_spec(
            faults={"clientstate": {"name": "always-on", "params": {}}},
            parallelism={"mode": "none"},
        )
        assert spec_hash(bare) == spec_hash(explicit)

    def test_name_is_not_part_of_the_identity(self):
        assert spec_hash(base_spec(name="a")) == spec_hash(base_spec(name="grid#3"))
        assert "name" not in canonical_spec(base_spec())

    def test_scenario_object_and_mapping_hash_equal(self):
        spec = base_spec()
        assert spec_hash(Scenario.from_dict(spec)) == spec_hash(spec)

    def test_json_round_trip_is_stable(self):
        spec = base_spec()
        assert spec_hash(spec) == spec_hash(json.loads(json.dumps(spec)))


LEAF_MUTATIONS = [
    {"seed": 1},
    {"num_workers": 7},
    {"data": {"name": "synthetic-mnist", "params": {"num_train": 121, "num_test": 60, "image_size": 8}, "flatten": True}},
    {"data": {"name": "synthetic-mnist", "params": {"num_train": 120, "num_test": 60, "image_size": 8}, "flatten": True, "materialization": "lazy"}},
    {"model": {"name": "lr", "params": {"input_dim": 64, "hidden": 9, "num_classes": 10}}},
    {"timing": {"base_local_time": 2.5}},
    {"timing": {"base_local_time": 2.0, "kappa_max": 9.0}},
    {"training": {"max_rounds": 4, "max_eval_samples": 60}},
    {"training": {"max_rounds": 3, "max_eval_samples": 60, "learning_rate": 0.05}},
    {"algorithm": {"grouping": {"xi": 0.7}}},
    {"partition": {"name": "dirichlet", "params": {}}},
    {"channel": {"name": "static", "params": {}}},
    {"mechanism": {"name": "air_fedavg", "params": {}}},
    {"parallelism": {"mode": "processes", "num_processes": 2}},
    {"faults": {"clientstate": {"name": "bernoulli", "params": {}}}},
    {"faults": {"quorum_fraction": 0.75}},
    {"faults": {"max_retries": 3}},
]


class TestSpecHashSensitivity:
    @pytest.mark.parametrize("mutation", LEAF_MUTATIONS, ids=lambda m: next(iter(m)))
    def test_changing_any_resolved_leaf_changes_the_hash(self, mutation):
        assert spec_hash(base_spec()) != spec_hash(base_spec(**mutation))

    def test_version_salt_changes_the_hash(self, monkeypatch):
        before = spec_hash(base_spec())
        monkeypatch.setattr(runcache, "CACHE_VERSION", CACHE_VERSION + "-bumped")
        assert spec_hash(base_spec()) != before

    def test_grid_hash_is_order_sensitive(self):
        a, b = spec_hash(base_spec(seed=0)), spec_hash(base_spec(seed=1))
        assert grid_hash([a, b]) != grid_hash([b, a])
        assert grid_hash([a, b]) == grid_hash([a, b])


def success_row(hash_):
    return {
        "index": 3,
        "scenario": "grid#3",
        "spec_hash": hash_,
        "overrides": {"seed": 3},
        "cpu_count": 4,
        "attempts": 1,
        "cache_hit": False,
        "mechanism": "air_fedga",
        "engine": "auto",
        "parallelism_configured": "none",
        "parallelism_mode": "none",
        "pipeline": False,
        "summary": {"rounds": 3.0, "final_accuracy": 0.5},
        "pipeline_hits": 0,
        "pipeline_recomputes": 0,
        "faults": {"workers_dropped": 0},
    }


class TestRunCache:
    def test_put_get_round_trip_strips_grid_position(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        hash_ = spec_hash(base_spec())
        path = cache.put(hash_, success_row(hash_))
        assert path.exists() and hash_ in cache and len(cache) == 1
        row = cache.get(hash_)
        assert row["summary"] == {"rounds": 3.0, "final_accuracy": 0.5}
        # Grid-position keys are rebuilt by the hitting sweep, not cached.
        for key in ("index", "scenario", "overrides", "attempts", "cache_hit"):
            assert key not in row

    def test_error_rows_are_not_cacheable(self, tmp_path):
        cache = RunCache(tmp_path)
        row = success_row("h")
        del row["summary"]
        row["error"] = "RuntimeError: boom"
        with pytest.raises(ValueError, match="successful"):
            cache.put("h", row)

    def test_missing_and_corrupt_entries_read_as_misses(self, tmp_path):
        cache = RunCache(tmp_path)
        hash_ = spec_hash(base_spec())
        assert cache.get(hash_) is None and hash_ not in cache
        path = cache.path_for(hash_)
        path.parent.mkdir(parents=True)
        path.write_text("{ torn json")
        assert cache.get(hash_) is None

    def test_version_skewed_entry_reads_as_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        hash_ = spec_hash(base_spec())
        cache.put(hash_, success_row(hash_))
        entry = json.loads(cache.path_for(hash_).read_text())
        entry["cache_version"] = "sweep-cache-v0"
        cache.path_for(hash_).write_text(json.dumps(entry))
        assert cache.get(hash_) is None

    def test_hash_mismatch_reads_as_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        hash_ = spec_hash(base_spec())
        cache.put(hash_, success_row(hash_))
        other = spec_hash(base_spec(seed=9))
        other_path = cache.path_for(other)
        other_path.parent.mkdir(parents=True, exist_ok=True)
        other_path.write_text(cache.path_for(hash_).read_text())
        assert cache.get(other) is None

    def test_empty_cache_has_length_zero(self, tmp_path):
        assert len(RunCache(tmp_path / "nowhere")) == 0
