"""Unit tests for the plain-text reporting helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import format_float, format_mapping, format_series, format_table


class TestFormatFloat:
    def test_regular_value(self):
        assert format_float(1.23456, precision=2) == "1.23"

    def test_none_is_dash(self):
        assert format_float(None) == "-"

    def test_nan_and_inf(self):
        assert format_float(float("nan")) == "nan"
        assert format_float(float("inf")) == "inf"


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["name", "value"], [("a", 1.0), ("b", 2.5)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "2.500" in lines[-1]

    def test_alignment_widths(self):
        text = format_table(["m"], [("longer-name",)])
        header, sep, row = text.splitlines()
        assert len(header) == len(sep) == len(row)

    def test_none_cells_rendered_as_dash(self):
        text = format_table(["x"], [(None,)])
        assert "-" in text.splitlines()[-1]

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1.0,)])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatSeries:
    def test_renders_each_series(self):
        series = {
            "air_fedga": {"time": np.arange(20.0), "accuracy": np.linspace(0, 1, 20)},
        }
        text = format_series(series, max_points=5)
        assert text.startswith("air_fedga:")
        # Down-sampled to roughly max_points entries.
        assert text.count("(") <= 7

    def test_mismatched_lengths_rejected(self):
        series = {"x": {"time": [1.0, 2.0], "accuracy": [0.1]}}
        with pytest.raises(ValueError):
            format_series(series)


class TestFormatMapping:
    def test_renders_floats_and_strings(self):
        text = format_mapping({"acc": 0.5, "note": "ok"}, title="Summary")
        assert "Summary" in text
        assert "acc: 0.500" in text
        assert "note: ok" in text
