"""Regression: failed points carry their spec hash and retry on resume.

A grid point that fails every retry must emit an error row stamped with
the point's resolved ``spec_hash`` — that stamp is what lets ``--resume``
distinguish "failed, retry me" from "never started" — and a later resume
must re-execute exactly that point (and nothing else), succeeding once
the transient cause is gone.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import registry
from repro.experiments.sweep import SweepManifest, SweepRunner

pytestmark = pytest.mark.sweep_resume

#: Executions of the gated model factory, keyed by gate value ("" = open).
CALLS = {"": 0, "gated": 0}


def gated_lr(seed=0, gate="", input_dim=64, hidden=8, num_classes=10):
    """An ``lr`` model behind a file gate: building fails while the gate
    file exists — a deterministic stand-in for a flaky dependency."""
    CALLS["gated" if gate else ""] += 1
    if gate and Path(gate).exists():
        raise RuntimeError("flaky dependency offline (gate file present)")
    return registry.create(
        "model", "lr", seed=seed, input_dim=input_dim,
        hidden=hidden, num_classes=num_classes,
    )


@pytest.fixture(autouse=True)
def gate_component():
    """Register the test-only model for the test's duration; a module-level
    registration would leak into the registry other collected tests
    (e.g. ``tests/registry``) assert the exact contents of."""
    registry.register("model", "gate-lr", overwrite=True)(gated_lr)
    yield
    registry._REGISTRY.get("model", {}).pop("gate-lr", None)


def gated_spec(gate_path: str):
    return {
        "name": "gated",
        "num_workers": 6,
        "seed": 0,
        "data": {
            "name": "synthetic-mnist",
            "params": {"num_train": 120, "num_test": 60, "image_size": 8},
            "flatten": True,
        },
        "model": {
            "name": "gate-lr",
            # The gate leaf is a sweep axis: point 0 is ungated (always
            # succeeds), point 1 fails while the gate file exists.
            "params": {"gate": ["", gate_path], "input_dim": 64, "hidden": 8,
                       "num_classes": 10},
        },
        "timing": {"base_local_time": 2.0},
        "training": {"max_rounds": 3, "max_eval_samples": 60},
    }


class TestFailedPointResume:
    def test_exhausted_retries_then_success_on_resume(self, tmp_path):
        gate = tmp_path / "gate"
        gate.touch()
        spec = gated_spec(str(gate))
        out = tmp_path / "results.jsonl"

        runner = SweepRunner(
            spec, output=out, mode="serial", retries=2, retry_backoff=0.0
        )
        rows = runner.run()
        by_index = {row["index"]: row for row in rows}
        assert "summary" in by_index[0] and "error" in by_index[1]

        # The error row records the failing point's resolved spec hash --
        # the key that lets resume match it back to the grid.
        failed = by_index[1]
        assert failed["spec_hash"] == runner.point_hashes[1]
        assert failed["attempts"] == 3  # initial execution + 2 retries
        assert "flaky dependency offline" in failed["error"]
        assert "Traceback (most recent call last)" in failed["traceback"]

        manifest = SweepManifest.load(out.with_suffix(".manifest.json"))
        assert manifest.status(0) == "done" and manifest.status(1) == "failed"
        assert manifest.attempts(1) == 3

        # Transient cause resolved; resume re-executes only the failure.
        gate.unlink()
        ungated_calls = CALLS[""]
        resumed = SweepRunner(
            spec, output=out, mode="serial", retries=2, retry_backoff=0.0,
            resume=True,
        ).run()
        assert CALLS[""] == ungated_calls, "succeeded point must not re-run"

        by_index = {row["index"]: row for row in resumed}
        assert "summary" in by_index[1] and "error" not in by_index[1]
        assert by_index[1]["attempts"] == 1  # executions this launch
        assert by_index[0]["summary"] == rows[0]["summary"]  # reused verbatim

        # Merged JSONL: the superseded error row is compacted away.
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert [line["index"] for line in lines] == [0, 1]
        assert all("summary" in line for line in lines)

        # Cumulative attempts survive the resume: 3 failed + 1 success.
        manifest = SweepManifest.load(out.with_suffix(".manifest.json"))
        assert manifest.status(1) == "done" and manifest.attempts(1) == 4
        assert "error" not in manifest.points[1]
