"""Crash-and-resume integration tests for the sweep runner.

The contract under test (ROADMAP: "resumable, fault-tolerant sweeps"): a
sweep killed with SIGKILL mid-grid and relaunched with ``--resume``
completes only the unfinished points, and the merged JSONL covers every
grid point exactly once with per-point summaries bit-identical (float64)
to the same sweep run uninterrupted.  CI runs this file as the dedicated
``sweep-resume`` smoke job (``pytest -m sweep_resume``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.sweep import SweepManifest, SweepRunner

pytestmark = pytest.mark.sweep_resume

REPO_ROOT = Path(__file__).resolve().parents[2]
GRID_SIZE = 6


def sweep_spec():
    """A 6-point grid: 3 seeds x {fast, slow} dataset sizes.

    The odd-indexed points (num_train=16384) take ~1 s each while the
    even ones finish in tens of milliseconds — so killing the serial
    sweep as soon as the first row lands reliably interrupts it *inside*
    slow point 1, leaving a genuinely half-finished grid behind.
    """
    return {
        "name": "killgrid",
        "num_workers": 6,
        "seed": [0, 1, 2],
        "data": {
            "name": "synthetic-mnist",
            "params": {"num_train": [256, 16384], "num_test": 60, "image_size": 8},
            "flatten": True,
        },
        "model": {"name": "lr", "params": {"input_dim": 64, "hidden": 8, "num_classes": 10}},
        "timing": {"base_local_time": 2.0},
        "training": {"max_rounds": 25, "max_eval_samples": 60},
    }


def read_complete_rows(path: Path):
    """Parse only the fully written JSONL lines (a kill can tear the last)."""
    rows = []
    if not path.exists():
        return rows
    for line in path.read_text().splitlines():
        try:
            row = json.loads(line)
        except ValueError:
            continue
        if isinstance(row, dict):
            rows.append(row)
    return rows


def launch_sweep_subprocess(spec_path: Path, output: Path) -> subprocess.Popen:
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments",
            "sweep",
            str(spec_path),
            "--output",
            str(output),
            "--serial",
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestKillAndResume:
    def test_sigkill_mid_grid_then_resume_merges_bit_identically(self, tmp_path):
        spec = sweep_spec()
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))

        # Uninterrupted reference run (in-process, same serial mode).
        reference_out = tmp_path / "reference.jsonl"
        SweepRunner(spec, output=reference_out, mode="serial").run()
        reference = {row["index"]: row for row in read_complete_rows(reference_out)}
        assert len(reference) == GRID_SIZE

        # Launch the same sweep in a subprocess and SIGKILL it mid-grid.
        out = tmp_path / "killed.jsonl"
        proc = launch_sweep_subprocess(spec_path, out)
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break
                if out.exists() and out.read_text().count("\n") >= 1:
                    break
                time.sleep(0.02)
            proc.kill()  # SIGKILL: no cleanup handlers run
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - safety net
                proc.kill()

        pre_kill = {
            row["index"]: row
            for row in read_complete_rows(out)
            if "summary" in row and "error" not in row
        }
        if len(pre_kill) >= GRID_SIZE:  # pragma: no cover - kill raced completion
            pytest.skip("sweep finished before the kill landed")
        assert pre_kill, "no row completed before the kill; grid too fast to test"

        # Relaunch with --resume: only the unfinished points execute.
        code = cli_main(
            ["sweep", str(spec_path), "--output", str(out), "--serial", "--resume"]
        )
        assert code == 0

        # The merged JSONL covers every grid point exactly once ...
        merged_rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert sorted(row["index"] for row in merged_rows) == list(range(GRID_SIZE))
        merged = {row["index"]: row for row in merged_rows}

        # ... with summaries bit-identical (float64) to the uninterrupted
        # reference, fault counters and all.
        for index in range(GRID_SIZE):
            assert merged[index]["summary"] == reference[index]["summary"]
            assert merged[index]["faults"] == reference[index]["faults"]
            assert merged[index]["spec_hash"] == reference[index]["spec_hash"]
            assert "error" not in merged[index]

        # Rows completed before the kill were reused verbatim, not re-run.
        for index, row in pre_kill.items():
            assert merged[index]["summary"] == row["summary"]
            assert merged[index]["attempts"] == row["attempts"]

        # The manifest checkpoints the finished state.
        manifest = SweepManifest.load(out.with_suffix(".manifest.json"))
        assert [point["status"] for point in manifest.points] == ["done"] * GRID_SIZE

    def tiny_spec(self, **extra):
        spec = dict(sweep_spec(), seed=[0, 1], training={"max_rounds": 2})
        spec["data"] = {
            "name": "synthetic-mnist",
            "params": {"num_train": 120, "num_test": 60, "image_size": 8},
            "flatten": True,
        }
        spec.update(extra)
        return spec

    def test_resume_refuses_a_different_grid(self, tmp_path):
        spec = self.tiny_spec()
        out = tmp_path / "results.jsonl"
        SweepRunner(spec, output=out, mode="serial").run()
        changed = self.tiny_spec(seed=[0, 1, 2])  # a larger grid than the manifest's
        with pytest.raises(ValueError, match="different grid"):
            SweepRunner(changed, output=out, mode="serial", resume=True).run()

    def test_resume_without_prior_files_is_a_fresh_run(self, tmp_path):
        out = tmp_path / "fresh.jsonl"
        rows = SweepRunner(
            self.tiny_spec(seed=0), output=out, mode="serial", resume=True
        ).run()
        assert len(rows) == 1 and "summary" in rows[0]
        assert out.exists() and out.with_suffix(".manifest.json").exists()
