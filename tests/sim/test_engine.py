"""Unit tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.sim import EventType, SimulationEngine, SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert SimulationEngine().now == 0.0

    def test_step_advances_clock_to_event_time(self):
        engine = SimulationEngine()
        engine.schedule_at(2.5, EventType.CUSTOM)
        engine.step()
        assert engine.now == 2.5

    def test_events_processed_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.on(EventType.CUSTOM, lambda _e, ev: order.append(ev.payload["tag"]))
        engine.schedule_at(3.0, EventType.CUSTOM, tag="c")
        engine.schedule_at(1.0, EventType.CUSTOM, tag="a")
        engine.schedule_at(2.0, EventType.CUSTOM, tag="b")
        engine.run_until()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_in_schedule_order(self):
        engine = SimulationEngine()
        order = []
        engine.on(EventType.CUSTOM, lambda _e, ev: order.append(ev.payload["tag"]))
        engine.schedule_at(1.0, EventType.CUSTOM, tag="first")
        engine.schedule_at(1.0, EventType.CUSTOM, tag="second")
        engine.run_until()
        assert order == ["first", "second"]

    def test_schedule_after_uses_current_time(self):
        engine = SimulationEngine()
        engine.schedule_at(5.0, EventType.CUSTOM)
        engine.step()
        e = engine.schedule_after(2.0, EventType.CUSTOM)
        assert e.time == 7.0

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine()
        engine.schedule_at(5.0, EventType.CUSTOM)
        engine.step()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, EventType.CUSTOM)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule_after(-1.0, EventType.CUSTOM)


class TestHandlersAndRun:
    def test_handlers_can_schedule_followups(self):
        engine = SimulationEngine()
        seen = []

        def handler(eng, event):
            seen.append(eng.now)
            if len(seen) < 3:
                eng.schedule_after(1.0, EventType.CUSTOM)

        engine.on(EventType.CUSTOM, handler)
        engine.schedule_at(1.0, EventType.CUSTOM)
        engine.run_until()
        assert seen == [1.0, 2.0, 3.0]

    def test_multiple_handlers_all_called(self):
        engine = SimulationEngine()
        calls = []
        engine.on(EventType.CUSTOM, lambda *_: calls.append("a"))
        engine.on(EventType.CUSTOM, lambda *_: calls.append("b"))
        engine.schedule_at(1.0, EventType.CUSTOM)
        engine.run_until()
        assert calls == ["a", "b"]

    def test_run_until_stop_condition(self):
        engine = SimulationEngine()
        for t in range(1, 6):
            engine.schedule_at(float(t), EventType.CUSTOM)
        engine.run_until(stop=lambda: engine.now >= 3.0)
        assert engine.now == 3.0
        assert engine.pending == 2

    def test_run_until_max_events(self):
        engine = SimulationEngine()
        for t in range(1, 6):
            engine.schedule_at(float(t), EventType.CUSTOM)
        processed = engine.run_until(max_events=2)
        assert processed == 2

    def test_run_until_max_time(self):
        engine = SimulationEngine()
        for t in range(1, 6):
            engine.schedule_at(float(t), EventType.CUSTOM)
        engine.run_until(max_time=3.5)
        assert engine.now == 3.0
        assert engine.pending == 2

    def test_step_on_empty_queue_returns_none(self):
        assert SimulationEngine().step() is None

    def test_processed_counter(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, EventType.CUSTOM)
        engine.schedule_at(2.0, EventType.CUSTOM)
        engine.run_until()
        assert engine.processed == 2

    def test_reset(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, EventType.CUSTOM)
        engine.step()
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending == 0
        assert engine.processed == 0
