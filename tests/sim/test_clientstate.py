"""Unit tests for the client-state (device-realism) models.

The contract under test (src/repro/sim/clientstate.py): every model's
draws come from dedicated per-(worker, round, sequence, purpose) RNG
streams seeded by the model seed, so trajectories are exactly
reproducible, draws for different workers/dispatches are independent,
and the ``always-on`` model injects no faults at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import registry
from repro.sim import (
    AlwaysOnModel,
    BernoulliAvailability,
    ClientStateModel,
    CyclicAvailability,
    DropoutRejoinModel,
    LognormalAvailability,
    PartialCompletionModel,
)
from repro.sim.clientstate import model_names


class TestBaseModel:
    def test_validates_num_workers_and_dropout_prob(self):
        with pytest.raises(ValueError, match="num_workers"):
            ClientStateModel(num_workers=0)
        with pytest.raises(ValueError, match="dropout_prob"):
            ClientStateModel(num_workers=4, dropout_prob=1.5)

    def test_worker_id_bounds_checked(self):
        model = ClientStateModel(num_workers=4)
        with pytest.raises(ValueError, match="invalid worker id"):
            model.available(4, 0, 0)
        with pytest.raises(ValueError, match="invalid worker id"):
            model.survives(-1, 0, 0)

    def test_default_model_is_fault_free(self):
        model = ClientStateModel(num_workers=4, seed=1)
        assert model.availability_mask(range(4), 3, 0).all()
        assert model.survival_mask(range(4), 3, 0).all()
        assert np.array_equal(model.completion_fractions(range(4), 3, 0), np.ones(4))

    def test_dropout_prob_drives_survival(self):
        model = ClientStateModel(num_workers=10, seed=2, dropout_prob=0.5)
        draws = [
            model.survival_mask(range(10), r, r).sum() for r in range(50)
        ]
        rate = sum(draws) / 500.0
        assert 0.4 < rate < 0.6

    def test_same_seed_same_trajectory(self):
        a = ClientStateModel(num_workers=6, seed=3, dropout_prob=0.3)
        b = ClientStateModel(num_workers=6, seed=3, dropout_prob=0.3)
        for r in range(10):
            assert np.array_equal(
                a.survival_mask(range(6), r, r), b.survival_mask(range(6), r, r)
            )

    def test_different_purpose_tags_use_independent_streams(self):
        # Survival and completion draws of the same (worker, round, seq)
        # must not share RNG state with availability draws: a model with
        # every fault type active exercises all three tags at once.
        model = PartialCompletionModel(
            num_workers=12, seed=4, partial_prob=0.5, dropout_prob=0.5
        )
        survive = model.survival_mask(range(12), 1, 0)
        fractions = model.completion_fractions(range(12), 1, 0)
        # Not a deterministic coupling: with shared streams these would be
        # perfectly correlated; with 12 workers at p=0.5 they cannot agree
        # everywhere for this seed (checked once, stable by construction).
        assert not np.array_equal(survive, fractions == 1.0)


class TestAlwaysOn:
    def test_flag_and_no_faults(self):
        model = AlwaysOnModel(num_workers=5, seed=9)
        assert model.is_always_on
        assert model.dropout_prob == 0.0
        assert model.availability_mask(range(5), 0, 0).all()
        assert model.survival_mask(range(5), 0, 0).all()

    def test_other_models_are_not_always_on(self):
        assert not BernoulliAvailability(num_workers=2).is_always_on
        assert not PartialCompletionModel(num_workers=2).is_always_on


class TestBernoulli:
    def test_validates_availability(self):
        with pytest.raises(ValueError, match="availability"):
            BernoulliAvailability(num_workers=4, availability=1.2)

    def test_availability_one_short_circuits(self):
        model = BernoulliAvailability(num_workers=4, seed=0, availability=1.0)
        for r in range(20):
            assert model.availability_mask(range(4), r, r).all()

    def test_empirical_rate_matches_probability(self):
        model = BernoulliAvailability(num_workers=20, seed=5, availability=0.7)
        total = sum(
            model.availability_mask(range(20), r, r).sum() for r in range(100)
        )
        assert 0.65 < total / 2000.0 < 0.75

    def test_draws_vary_with_sequence(self):
        # Retries (same round label, new sequence) must get fresh draws.
        model = BernoulliAvailability(num_workers=30, seed=6, availability=0.5)
        m0 = model.availability_mask(range(30), 1, 0)
        m1 = model.availability_mask(range(30), 1, 1)
        assert not np.array_equal(m0, m1)


class TestLognormal:
    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="sigma"):
            LognormalAvailability(num_workers=4, sigma=0.0)
        with pytest.raises(ValueError, match="floor"):
            LognormalAvailability(num_workers=4, floor=0.0)

    def test_probs_normalized_and_floored(self):
        model = LognormalAvailability(num_workers=50, seed=7, sigma=2.0, floor=0.1)
        probs = model.availability_probs
        assert probs.shape == (50,)
        assert probs.max() == pytest.approx(1.0)
        assert probs.min() >= 0.1
        # Heavy tail: the fleet is heterogeneous, not uniform.
        assert probs.std() > 0.05

    def test_rates_fixed_by_seed(self):
        a = LognormalAvailability(num_workers=10, seed=8)
        b = LognormalAvailability(num_workers=10, seed=8)
        assert np.array_equal(a.availability_probs, b.availability_probs)
        c = LognormalAvailability(num_workers=10, seed=9)
        assert not np.array_equal(a.availability_probs, c.availability_probs)

    def test_flaky_workers_less_available(self):
        model = LognormalAvailability(num_workers=20, seed=10, sigma=1.5)
        probs = model.availability_probs
        best, worst = int(probs.argmax()), int(probs.argmin())
        rounds = 200
        best_up = sum(model.available(best, r, r) for r in range(rounds))
        worst_up = sum(model.available(worst, r, r) for r in range(rounds))
        assert best_up > worst_up


class TestCyclic:
    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="period"):
            CyclicAvailability(num_workers=4, period=0.0)
        with pytest.raises(ValueError, match="low"):
            CyclicAvailability(num_workers=4, low=0.8, high=0.2)

    def test_probability_oscillates_within_bounds(self):
        model = CyclicAvailability(
            num_workers=4, seed=11, period=10.0, low=0.2, high=0.8
        )
        probs = [model.availability_probability(0, r) for r in range(40)]
        assert min(probs) >= 0.2 - 1e-12 and max(probs) <= 0.8 + 1e-12
        # The duty cycle actually swings across most of the [low, high] band.
        assert max(probs) - min(probs) > 0.4

    def test_phases_stagger_workers(self):
        model = CyclicAvailability(num_workers=8, seed=12, period=24.0)
        at_zero = [model.availability_probability(w, 0) for w in range(8)]
        assert len(set(np.round(at_zero, 6))) > 1


class TestDropoutRejoin:
    def test_validates_rejoin_after(self):
        with pytest.raises(ValueError, match="rejoin_after"):
            DropoutRejoinModel(num_workers=4, rejoin_after=0)

    def test_dropped_worker_sits_out_cooldown_then_rejoins(self):
        model = DropoutRejoinModel(
            num_workers=1, seed=13, dropout_prob=1.0, rejoin_after=3
        )
        assert model.available(0, 1, 0)
        assert not model.survives(0, 1, 0)  # drops at sequence 0
        # Down for sequences 1..3, eligible again from sequence 4.
        for seq in (1, 2, 3):
            assert not model.available(0, 1, seq)
        assert model.available(0, 1, 4)

    def test_stateful_trajectory_replays_identically(self):
        def trajectory():
            model = DropoutRejoinModel(
                num_workers=6, seed=14, dropout_prob=0.4, rejoin_after=2
            )
            trace = []
            for seq in range(30):
                avail = model.availability_mask(range(6), seq, seq)
                up = [w for w in range(6) if avail[w]]
                survive = model.survival_mask(up, seq, seq)
                trace.append((tuple(avail), tuple(survive)))
            return trace

        assert trajectory() == trajectory()


class TestPartialCompletion:
    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="partial_prob"):
            PartialCompletionModel(num_workers=4, partial_prob=-0.1)
        with pytest.raises(ValueError, match="min_fraction"):
            PartialCompletionModel(num_workers=4, min_fraction=0.0)

    def test_fractions_bounded_and_sometimes_partial(self):
        model = PartialCompletionModel(
            num_workers=10, seed=15, partial_prob=0.5, min_fraction=0.3
        )
        fractions = np.concatenate(
            [model.completion_fractions(range(10), r, r) for r in range(20)]
        )
        assert fractions.min() >= 0.3
        assert fractions.max() <= 1.0
        partial = fractions < 1.0
        assert 0.3 < partial.mean() < 0.7

    def test_partial_prob_zero_always_full(self):
        model = PartialCompletionModel(num_workers=4, seed=16, partial_prob=0.0)
        for r in range(10):
            assert np.array_equal(
                model.completion_fractions(range(4), r, r), np.ones(4)
            )


class TestRegistry:
    def test_all_models_registered(self):
        names = model_names()
        for name in (
            "always-on", "bernoulli", "lognormal", "cyclic",
            "dropout-rejoin", "partial",
        ):
            assert name in names

    def test_registry_create_round_trip(self):
        model = registry.create(
            "clientstate", "bernoulli", num_workers=7, seed=3, availability=0.8
        )
        assert isinstance(model, BernoulliAvailability)
        assert model.num_workers == 7
        assert model.availability == 0.8

    def test_typo_suggests_close_match(self):
        with pytest.raises(KeyError, match="bernoulli"):
            registry.create("clientstate", "bernouli", num_workers=4)
