"""Unit tests for simulator event records."""

from __future__ import annotations

import pytest

from repro.sim import Event, EventType, ExecuteMessage, ReadyMessage


class TestEvent:
    def test_create_sets_fields(self):
        e = Event.create(1.5, EventType.WORKER_READY, worker_id=3)
        assert e.time == 1.5
        assert e.type is EventType.WORKER_READY
        assert e.payload == {"worker_id": 3}

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event.create(-0.1, EventType.CUSTOM)

    def test_ordering_by_time(self):
        early = Event.create(1.0, EventType.CUSTOM)
        late = Event.create(2.0, EventType.CUSTOM)
        assert early < late

    def test_ties_broken_by_creation_order(self):
        first = Event.create(1.0, EventType.CUSTOM)
        second = Event.create(1.0, EventType.CUSTOM)
        assert first < second

    def test_event_types(self):
        assert {t.value for t in EventType} == {
            "worker_ready",
            "group_execute",
            "aggregation_done",
            "custom",
        }


class TestMessages:
    def test_ready_message_fields(self):
        msg = ReadyMessage(worker_id=2, group_id=1, sent_at=3.0)
        assert (msg.worker_id, msg.group_id, msg.sent_at) == (2, 1, 3.0)

    def test_execute_message_fields(self):
        msg = ExecuteMessage(group_id=0, round_index=4, sent_at=7.0)
        assert (msg.group_id, msg.round_index, msg.sent_at) == (0, 4, 7.0)
