"""Unit tests for the edge-heterogeneity latency model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import HeterogeneityModel, LatencyTable


class TestHeterogeneityModel:
    def test_kappa_within_range(self):
        model = HeterogeneityModel(num_workers=200, kappa_min=1.0, kappa_max=10.0, seed=0)
        k = model.kappa
        assert np.all(k >= 1.0) and np.all(k <= 10.0)

    def test_paper_range_spans_most_of_interval(self):
        model = HeterogeneityModel(num_workers=500, seed=1)
        k = model.kappa
        assert k.min() < 2.0 and k.max() > 8.0

    def test_reproducible(self):
        a = HeterogeneityModel(num_workers=10, seed=3).kappa
        b = HeterogeneityModel(num_workers=10, seed=3).kappa
        np.testing.assert_array_equal(a, b)

    def test_scale_lookup(self):
        model = HeterogeneityModel(num_workers=5, seed=0)
        assert model.scale(2) == pytest.approx(model.kappa[2])
        with pytest.raises(ValueError):
            model.scale(9)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_workers": 0},
            {"num_workers": 3, "kappa_min": 0.0},
            {"num_workers": 3, "kappa_min": 5.0, "kappa_max": 2.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HeterogeneityModel(**kwargs)


class TestLatencyTable:
    def test_homogeneous_without_heterogeneity_model(self):
        table = LatencyTable(num_workers=4, base_time=3.0)
        np.testing.assert_allclose(table.nominal_times(), 3.0)
        assert table.spread() == 0.0

    def test_times_scale_with_kappa(self):
        het = HeterogeneityModel(num_workers=6, seed=0)
        table = LatencyTable(num_workers=6, base_time=2.0, heterogeneity=het)
        np.testing.assert_allclose(table.nominal_times(), 2.0 * het.kappa)

    def test_spread_is_max_minus_min(self):
        het = HeterogeneityModel(num_workers=20, seed=0)
        table = LatencyTable(num_workers=20, base_time=1.0, heterogeneity=het)
        times = table.nominal_times()
        assert table.spread() == pytest.approx(times.max() - times.min())

    def test_sample_time_without_jitter_is_nominal(self):
        het = HeterogeneityModel(num_workers=5, seed=0)
        table = LatencyTable(num_workers=5, base_time=2.0, heterogeneity=het)
        for w in range(5):
            assert table.sample_time(w, 3) == table.nominal[w]

    def test_nominal_is_read_only_view(self):
        table = LatencyTable(num_workers=4, base_time=1.5)
        view = table.nominal
        assert np.shares_memory(view, table.nominal)
        with pytest.raises(ValueError):
            view[0] = 99.0

    def test_nominal_time_deprecated_but_forwarding(self):
        het = HeterogeneityModel(num_workers=5, seed=0)
        table = LatencyTable(num_workers=5, base_time=2.0, heterogeneity=het)
        with pytest.warns(DeprecationWarning, match="nominal_time"):
            value = table.nominal_time(2)
        assert value == table.nominal[2]

    def test_jitter_is_deterministic_per_worker_and_round(self):
        table = LatencyTable(num_workers=3, base_time=1.0, jitter_std=0.2, seed=7)
        assert table.sample_time(1, 4) == table.sample_time(1, 4)
        assert table.sample_time(1, 4) != table.sample_time(1, 5)

    def test_jitter_stays_positive(self):
        table = LatencyTable(num_workers=3, base_time=1.0, jitter_std=2.0, seed=7)
        for w in range(3):
            for r in range(20):
                assert table.sample_time(w, r) > 0

    def test_group_completion_time_is_slowest_member(self):
        het = HeterogeneityModel(num_workers=6, seed=1)
        table = LatencyTable(num_workers=6, base_time=1.0, heterogeneity=het)
        members = [0, 2, 4]
        expected = max(table.nominal[w] for w in members)
        assert table.group_completion_time(members) == pytest.approx(expected)
        assert table.group_completion_time(
            np.asarray(members, dtype=np.int64)
        ) == pytest.approx(expected)

    def test_group_completion_requires_members(self):
        table = LatencyTable(num_workers=3, base_time=1.0)
        with pytest.raises(ValueError):
            table.group_completion_time([])

    def test_mismatched_heterogeneity_size_rejected(self):
        het = HeterogeneityModel(num_workers=4, seed=0)
        with pytest.raises(ValueError):
            LatencyTable(num_workers=5, base_time=1.0, heterogeneity=het)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_workers": 0, "base_time": 1.0},
            {"num_workers": 3, "base_time": 0.0},
            {"num_workers": 3, "base_time": 1.0, "jitter_std": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LatencyTable(**kwargs)

    def test_invalid_worker_id(self):
        table = LatencyTable(num_workers=3, base_time=1.0)
        with pytest.raises(ValueError):
            table.sample_time(7, 0)
        with pytest.raises(ValueError):
            table.sample_times([0, 7])
        with pytest.raises(ValueError), pytest.warns(DeprecationWarning):
            table.nominal_time(7)
