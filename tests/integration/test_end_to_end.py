"""Integration tests: full federated training runs across the whole stack.

These tests exercise dataset generation -> partitioning -> heterogeneity ->
channel -> grouping -> power control -> asynchronous training -> metrics in
one go, on deliberately small problems.  They check *behavioural* properties
(learning happens, shapes of the paper's comparisons hold qualitatively)
rather than exact numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import StaticChannel
from repro.core import AirCompConfig, AirFedGAConfig
from repro.data import make_mnist_like, partition_label_skew
from repro.fl import FLExperiment, build_trainer
from repro.nn import LogisticRegressionMLP
from repro.sim import HeterogeneityModel, LatencyTable


NUM_WORKERS = 20


def build_exp(seed=0, noise_variance=1.0, num_workers=NUM_WORKERS, max_eval=120):
    dataset = make_mnist_like(
        num_train=800, num_test=200, image_size=8, seed=seed
    ).flattened()
    partition = partition_label_skew(dataset, num_workers=num_workers, seed=seed)
    latency = LatencyTable(
        num_workers=num_workers,
        base_time=4.0,
        heterogeneity=HeterogeneityModel(num_workers=num_workers, seed=seed + 1),
    )
    channel = StaticChannel(num_workers=num_workers, mean_gain=1.0, spread=2.0, seed=seed + 2)
    return FLExperiment(
        dataset=dataset,
        partition=partition,
        model_factory=lambda: LogisticRegressionMLP(input_dim=64, hidden=24, seed=seed),
        latency=latency,
        channel=channel,
        config=AirFedGAConfig(aircomp=AirCompConfig(noise_variance=noise_variance)),
        learning_rate=0.2,
        local_steps=4,
        batch_size=32,
        eval_every=4,
        max_eval_samples=max_eval,
        seed=seed,
        latency_model_dimension=670_730,
    )


@pytest.mark.slow
class TestLearningHappens:
    def test_air_fedga_learns_under_label_skew(self):
        trainer = build_trainer("air_fedga", build_exp())
        history = trainer.run(max_rounds=120, max_time=800.0)
        assert history.best_accuracy() > 0.5
        assert history.final_loss < history.records[0].loss

    def test_air_fedavg_learns(self):
        trainer = build_trainer("air_fedavg", build_exp())
        history = trainer.run(max_rounds=25, max_time=800.0)
        assert history.best_accuracy() > 0.5

    def test_fedavg_learns_with_exact_aggregation(self):
        trainer = build_trainer("fedavg", build_exp())
        history = trainer.run(max_rounds=15)
        assert history.best_accuracy() > 0.5


@pytest.mark.slow
class TestPaperShapes:
    def test_air_fedga_more_updates_per_unit_time_than_air_fedavg(self):
        """Group-asynchronous updates arrive more often than full synchronous ones."""
        ga = build_trainer("air_fedga", build_exp())
        ga_hist = ga.run(max_rounds=500, max_time=300.0)
        avg = build_trainer("air_fedavg", build_exp())
        avg_hist = avg.run(max_rounds=500, max_time=300.0)
        assert ga_hist.total_rounds > avg_hist.total_rounds

    def test_air_fedga_round_time_below_air_fedavg(self):
        ga_hist = build_trainer("air_fedga", build_exp()).run(max_rounds=30)
        avg_hist = build_trainer("air_fedavg", build_exp()).run(max_rounds=10)
        assert ga_hist.average_round_time() < avg_hist.average_round_time()

    def test_aircomp_round_time_below_oma_at_scale(self):
        """Air-FedAvg's upload phase is independent of N; FedAvg's grows with N."""
        air = build_trainer("air_fedavg", build_exp()).run(max_rounds=4)
        oma = build_trainer("fedavg", build_exp()).run(max_rounds=4)
        assert air.average_round_time() < oma.average_round_time()

    def test_grouping_reduces_staleness_versus_singletons(self):
        """Fewer groups -> smaller maximum staleness (Corollary 2 direction)."""
        grouped = build_trainer("air_fedga", build_exp(), grouping_strategy="greedy")
        singles = build_trainer("air_fedga", build_exp(), grouping_strategy="singleton")
        if len(grouped.groups) >= len(singles.groups):
            pytest.skip("greedy grouping did not merge workers on this fixture")
        g_hist = grouped.run(max_rounds=60)
        s_hist = singles.run(max_rounds=60)
        assert g_hist.max_staleness() <= s_hist.max_staleness()

    def test_noiseless_channel_not_worse_than_noisy(self):
        quiet = build_trainer("air_fedga", build_exp(noise_variance=1e-12))
        noisy = build_trainer("air_fedga", build_exp(noise_variance=50.0))
        q_hist = quiet.run(max_rounds=80, max_time=400.0)
        n_hist = noisy.run(max_rounds=80, max_time=400.0)
        assert q_hist.best_accuracy() >= n_hist.best_accuracy() - 0.05


@pytest.mark.slow
class TestReproducibility:
    def test_identical_runs_produce_identical_histories(self):
        a = build_trainer("air_fedga", build_exp(seed=3)).run(max_rounds=20)
        b = build_trainer("air_fedga", build_exp(seed=3)).run(max_rounds=20)
        np.testing.assert_allclose(a.accuracies(), b.accuracies())
        np.testing.assert_allclose(a.times(), b.times())
        np.testing.assert_allclose(a.energies(), b.energies())

    def test_different_seed_changes_trajectory(self):
        a = build_trainer("air_fedga", build_exp(seed=3)).run(max_rounds=20)
        b = build_trainer("air_fedga", build_exp(seed=4)).run(max_rounds=20)
        assert not np.allclose(a.accuracies(), b.accuracies())
