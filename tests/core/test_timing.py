"""Unit tests for the training-time model (Eqs. 33-35 and 39)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    GroupTiming,
    average_round_time,
    estimated_max_staleness,
    group_completion_time,
    participation_frequencies,
)


class TestGroupCompletionTime:
    def test_slowest_member_plus_upload(self):
        assert group_completion_time([2.0, 5.0, 3.0], 1.5) == pytest.approx(6.5)

    def test_single_member(self):
        assert group_completion_time([4.0], 0.5) == pytest.approx(4.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            group_completion_time([], 1.0)
        with pytest.raises(ValueError):
            group_completion_time([0.0], 1.0)
        with pytest.raises(ValueError):
            group_completion_time([1.0], -1.0)


class TestAverageRoundTime:
    def test_single_group(self):
        assert average_round_time([10.0]) == pytest.approx(10.0)

    def test_harmonic_combination(self):
        # Two groups with times 10 and 10 -> updates arrive twice as often.
        assert average_round_time([10.0, 10.0]) == pytest.approx(5.0)

    def test_fast_group_dominates(self):
        # A very fast group makes global updates frequent even if another is slow.
        assert average_round_time([1.0, 1000.0]) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            average_round_time([])
        with pytest.raises(ValueError):
            average_round_time([1.0, 0.0])


class TestParticipationFrequencies:
    def test_sums_to_one(self):
        psi = participation_frequencies([3.0, 6.0, 9.0])
        assert psi.sum() == pytest.approx(1.0)

    def test_faster_group_participates_more(self):
        psi = participation_frequencies([1.0, 2.0])
        assert psi[0] == pytest.approx(2.0 / 3.0)

    def test_equal_times_equal_frequencies(self):
        psi = participation_frequencies([5.0, 5.0, 5.0])
        np.testing.assert_allclose(psi, 1.0 / 3.0)


class TestEstimatedMaxStaleness:
    def test_single_group_value(self):
        # One group: tau-hat = L_max * (1/L_max) = 1 (raw value before the
        # self-update correction in GroupTiming).
        assert estimated_max_staleness([7.0]) == pytest.approx(1.0)

    def test_equal_groups(self):
        # M equal groups: the slowest completes while M updates happen.
        assert estimated_max_staleness([4.0, 4.0, 4.0]) == pytest.approx(3.0)

    def test_increases_with_imbalance(self):
        balanced = estimated_max_staleness([5.0, 5.0])
        imbalanced = estimated_max_staleness([1.0, 9.0])
        assert imbalanced > balanced


class TestGroupTiming:
    def _timing(self):
        return GroupTiming(
            group_local_times=[[2.0, 4.0], [8.0]],
            model_dimension=1000,
            num_subchannels=100,
            symbol_duration=0.1,
        )

    def test_upload_latency_formula(self):
        assert self._timing().upload_latency == pytest.approx(1.0)

    def test_group_times(self):
        np.testing.assert_allclose(self._timing().group_times, [5.0, 9.0])

    def test_round_time(self):
        t = self._timing()
        assert t.round_time == pytest.approx(1.0 / (1 / 5.0 + 1 / 9.0))

    def test_frequencies_match_rates(self):
        t = self._timing()
        np.testing.assert_allclose(
            t.frequencies, np.array([1 / 5.0, 1 / 9.0]) / (1 / 5.0 + 1 / 9.0)
        )

    def test_tau_max_estimate_zero_for_single_group(self):
        timing = GroupTiming(
            group_local_times=[[2.0, 4.0]],
            model_dimension=1000,
            num_subchannels=100,
            symbol_duration=0.1,
        )
        assert timing.tau_max_estimate() == pytest.approx(0.0)

    def test_tau_max_estimate_positive_for_multiple_groups(self):
        assert self._timing().tau_max_estimate() > 0.0

    def test_rejects_empty_grouping(self):
        with pytest.raises(ValueError):
            GroupTiming([], 1000, 100, 0.1)
