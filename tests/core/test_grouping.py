"""Unit tests for the worker-grouping strategies (Algorithm 3 + baselines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AirFedGAConfig,
    GroupingConfig,
    GroupingProblem,
    greedy_grouping,
    random_grouping,
    singleton_grouping,
    tier_grouping,
)
from repro.data import average_emd, make_mnist_like, partition_label_skew
from repro.sim import HeterogeneityModel, LatencyTable


def make_problem(num_workers=20, xi=0.3, seed=0, c_max=0.0):
    dataset = make_mnist_like(num_train=400, num_test=40, image_size=8, seed=seed)
    partition = partition_label_skew(dataset, num_workers=num_workers, seed=seed)
    latency = LatencyTable(
        num_workers=num_workers,
        base_time=2.0,
        heterogeneity=HeterogeneityModel(num_workers=num_workers, seed=seed + 1),
    )
    config = AirFedGAConfig(grouping=GroupingConfig(xi=xi))
    problem = GroupingProblem(
        data_sizes=partition.data_sizes(),
        class_counts=partition.class_counts(),
        local_times=latency.nominal_times(),
        model_dimension=100_000,
        config=config,
        c_max=c_max,
    )
    return problem, partition, latency


class TestGroupingProblem:
    def test_validation(self):
        with pytest.raises(ValueError):
            GroupingProblem(
                data_sizes=np.array([1.0]),
                class_counts=np.ones((2, 3)),
                local_times=np.array([1.0]),
                model_dimension=10,
            )
        with pytest.raises(ValueError):
            GroupingProblem(
                data_sizes=np.array([1.0]),
                class_counts=np.ones((1, 3)),
                local_times=np.array([0.0]),
                model_dimension=10,
            )
        with pytest.raises(ValueError):
            GroupingProblem(
                data_sizes=np.array([1.0]),
                class_counts=np.ones((1, 3)),
                local_times=np.array([1.0]),
                model_dimension=0,
            )

    def test_global_distribution_sums_to_one(self):
        problem, _, _ = make_problem()
        assert problem.global_distribution().sum() == pytest.approx(1.0)

    def test_time_spread(self):
        problem, _, latency = make_problem()
        times = latency.nominal_times()
        assert problem.time_spread() == pytest.approx(times.max() - times.min())


class TestGreedyGrouping:
    def test_covers_every_worker_exactly_once(self):
        problem, _, _ = make_problem()
        result = greedy_grouping(problem)
        assigned = sorted(w for g in result.groups for w in g)
        assert assigned == list(range(problem.num_workers))

    def test_respects_time_similarity_constraint(self):
        """Every member's straggler wait stays within xi * delta_l (Eq. 36d)."""
        problem, _, _ = make_problem(xi=0.3)
        result = greedy_grouping(problem)
        slack = 0.3 * problem.time_spread()
        for members, group_time in zip(result.groups, result.group_times):
            for w in members:
                wait = group_time - result.upload_latency - problem.local_times[w]
                assert wait <= slack + 1e-9

    def test_zero_xi_gives_singleton_groups(self):
        """xi -> 0 degenerates into fully asynchronous per-worker updates."""
        problem, _, _ = make_problem(xi=0.0)
        result = greedy_grouping(problem)
        # Workers with distinct training times cannot share a group.
        assert result.num_groups == problem.num_workers

    def test_large_xi_allows_few_groups(self):
        problem_small, _, _ = make_problem(xi=0.1, seed=3)
        problem_large, _, _ = make_problem(xi=1.0, seed=3)
        few = greedy_grouping(problem_large).num_groups
        many = greedy_grouping(problem_small).num_groups
        assert few <= many

    def test_reduces_emd_relative_to_singletons(self):
        problem, partition, _ = make_problem(num_workers=30)
        greedy = greedy_grouping(problem)
        single = singleton_grouping(problem)
        assert average_emd(partition, greedy.groups) < average_emd(
            partition, single.groups
        )

    def test_emd_not_worse_than_time_only_tiers(self):
        """The data-aware grouping should beat (or match) TiFL tiers (Table III)."""
        problem, partition, _ = make_problem(num_workers=40, seed=5)
        greedy = greedy_grouping(problem)
        tiers = tier_grouping(problem, num_groups=greedy.num_groups)
        assert average_emd(partition, greedy.groups) <= average_emd(
            partition, tiers.groups
        ) + 1e-9

    def test_objective_is_finite(self):
        problem, _, _ = make_problem()
        assert np.isfinite(greedy_grouping(problem).objective)

    def test_deterministic(self):
        problem, _, _ = make_problem(seed=2)
        a = greedy_grouping(problem)
        b = greedy_grouping(problem)
        assert [sorted(g) for g in a.groups] == [sorted(g) for g in b.groups]

    def test_betas_sum_to_one(self):
        problem, _, _ = make_problem()
        result = greedy_grouping(problem)
        assert result.betas.sum() == pytest.approx(1.0)

    def test_frequencies_sum_to_one(self):
        problem, _, _ = make_problem()
        result = greedy_grouping(problem)
        assert result.frequencies.sum() == pytest.approx(1.0)


class TestBaselineGroupings:
    def test_tier_grouping_sorted_by_time(self):
        problem, _, _ = make_problem(num_workers=24)
        result = tier_grouping(problem, num_groups=4)
        # Tiers are contiguous in sorted time order: the slowest member of
        # tier k is not slower than the fastest member of tier k+1.
        maxima = [problem.local_times[list(g)].max() for g in result.groups]
        minima = [problem.local_times[list(g)].min() for g in result.groups]
        for k in range(len(result.groups) - 1):
            assert maxima[k] <= minima[k + 1] + 1e-12

    def test_tier_grouping_group_count(self):
        problem, _, _ = make_problem(num_workers=24)
        assert tier_grouping(problem, num_groups=6).num_groups == 6

    def test_tier_grouping_caps_at_worker_count(self):
        problem, _, _ = make_problem(num_workers=5)
        assert tier_grouping(problem, num_groups=50).num_groups == 5

    def test_random_grouping_covers_all_workers(self):
        problem, _, _ = make_problem(num_workers=17)
        result = random_grouping(problem, num_groups=4, seed=3)
        assert sorted(w for g in result.groups for w in g) == list(range(17))

    def test_random_grouping_seed_reproducible(self):
        problem, _, _ = make_problem(num_workers=17)
        a = random_grouping(problem, num_groups=4, seed=3)
        b = random_grouping(problem, num_groups=4, seed=3)
        assert [sorted(g) for g in a.groups] == [sorted(g) for g in b.groups]

    def test_singleton_grouping(self):
        problem, _, _ = make_problem(num_workers=9)
        result = singleton_grouping(problem)
        assert result.num_groups == 9
        assert all(len(g) == 1 for g in result.groups)

    def test_invalid_group_counts(self):
        problem, _, _ = make_problem(num_workers=5)
        with pytest.raises(ValueError):
            tier_grouping(problem, num_groups=0)
        with pytest.raises(ValueError):
            random_grouping(problem, num_groups=0)


class TestGroupingResult:
    def test_group_of_and_membership(self):
        problem, _, _ = make_problem(num_workers=12)
        result = greedy_grouping(problem)
        membership = result.membership(12)
        for w in range(12):
            assert membership[w] == result.group_of(w)

    def test_group_of_unknown_worker(self):
        problem, _, _ = make_problem(num_workers=6)
        result = greedy_grouping(problem)
        with pytest.raises(KeyError):
            result.group_of(99)

    def test_membership_detects_missing_worker(self):
        problem, _, _ = make_problem(num_workers=6)
        result = greedy_grouping(problem)
        with pytest.raises(ValueError):
            result.membership(7)

    def test_lambdas_within_emd_bounds(self):
        problem, _, _ = make_problem(num_workers=20)
        result = greedy_grouping(problem)
        assert np.all(result.lambdas >= 0.0)
        assert np.all(result.lambdas <= 2.0 + 1e-12)
