"""Unit tests for the convergence analysis (Lemma 1, Theorem 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ConvergenceBound,
    ConvergenceConfig,
    grouping_objective,
    lemma1_bound_sequence,
    lemma1_decay,
    lemma1_residual,
    rounds_to_epsilon,
    theorem1_bound,
    theorem1_delta,
    theorem1_rho,
)


CFG = ConvergenceConfig()
PSI = [0.5, 0.5]
BETA = [0.4, 0.6]
LAMBDAS = [0.5, 0.2]


class TestLemma1:
    def test_decay_value(self):
        # (0.3 + 0.4)^(1/(1+1)) = sqrt(0.7)
        assert lemma1_decay(0.3, 0.4, 1) == pytest.approx(np.sqrt(0.7))

    def test_decay_increases_with_staleness(self):
        assert lemma1_decay(0.3, 0.4, 5) > lemma1_decay(0.3, 0.4, 0)

    def test_residual_value(self):
        assert lemma1_residual(0.3, 0.4, 0.6) == pytest.approx(2.0)

    def test_requires_contraction(self):
        with pytest.raises(ValueError):
            lemma1_decay(0.6, 0.5, 0)
        with pytest.raises(ValueError):
            lemma1_residual(0.6, 0.5, 0.1)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            lemma1_decay(-0.1, 0.5, 0)
        with pytest.raises(ValueError):
            lemma1_residual(0.1, 0.2, -1.0)
        with pytest.raises(ValueError):
            lemma1_decay(0.1, 0.2, -1)

    def test_bound_sequence_monotone_and_converges_to_delta(self):
        seq = lemma1_bound_sequence(q0=5.0, x=0.3, y=0.3, z=0.2, tau_max=2, steps=200)
        assert np.all(np.diff(seq) <= 1e-12)
        assert seq[-1] == pytest.approx(lemma1_residual(0.3, 0.3, 0.2), rel=1e-3)

    def test_bound_sequence_dominates_recursion(self):
        """The bound must upper-bound any sequence satisfying the recursion."""
        x, y, z, tau = 0.4, 0.2, 0.1, 1
        q = [2.0]
        for t in range(1, 60):
            lt = max(0, t - 1 - tau)
            q.append(x * q[t - 1] + y * q[lt] + z)
        bound = lemma1_bound_sequence(q0=2.0, x=x, y=y, z=z, tau_max=tau, steps=59)
        assert np.all(np.asarray(q) <= bound + 1e-9)


class TestTheorem1Rho:
    def test_in_unit_interval(self):
        rho = theorem1_rho(CFG, PSI, BETA, tau_max=2)
        assert 0.0 < rho < 1.0

    def test_rho_increases_with_staleness(self):
        """Corollary 2: larger tau_max means slower contraction."""
        assert theorem1_rho(CFG, PSI, BETA, 5) > theorem1_rho(CFG, PSI, BETA, 0)

    def test_single_group_has_smallest_rho(self):
        single = theorem1_rho(CFG, [1.0], [1.0], 0)
        multi = theorem1_rho(CFG, PSI, BETA, 3)
        assert single < multi

    def test_psi_must_sum_to_one(self):
        with pytest.raises(ValueError):
            theorem1_rho(CFG, [0.3, 0.3], BETA, 0)

    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError):
            theorem1_rho(CFG, PSI, BETA, -1)


class TestTheorem1Delta:
    def test_zero_for_iid_and_noiseless(self):
        """Corollary 1: IID groups (Lambda=0) and no aggregation error give delta=0."""
        delta = theorem1_delta(CFG, PSI, BETA, [0.0, 0.0], c_max=0.0)
        assert delta == pytest.approx(0.0)

    def test_increases_with_emd(self):
        """Corollary 1: more Non-IID (larger Lambda) means larger residual."""
        low = theorem1_delta(CFG, PSI, BETA, [0.1, 0.1], c_max=0.0)
        high = theorem1_delta(CFG, PSI, BETA, [1.5, 1.5], c_max=0.0)
        assert high > low

    def test_increases_with_aggregation_error(self):
        low = theorem1_delta(CFG, PSI, BETA, LAMBDAS, c_max=0.0)
        high = theorem1_delta(CFG, PSI, BETA, LAMBDAS, c_max=1.0)
        assert high > low

    def test_rejects_emd_above_two(self):
        with pytest.raises(ValueError):
            theorem1_delta(CFG, PSI, BETA, [2.5, 0.0], c_max=0.0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            theorem1_delta(CFG, PSI, BETA, [0.1], c_max=0.0)

    def test_requires_gamma_above_half_inverse_l(self):
        cfg = ConvergenceConfig(
            smoothness_L=1.0, strong_convexity_mu=0.0, learning_rate_gamma=0.9
        )
        # mu = 0 makes the denominator zero.
        with pytest.raises(ValueError):
            theorem1_delta(cfg, PSI, BETA, LAMBDAS, c_max=0.0)


class TestConvergenceBound:
    def test_evaluate_decreases_with_rounds(self):
        bound = theorem1_bound(CFG, PSI, BETA, LAMBDAS, tau_max=1, c_max=0.01)
        assert bound.evaluate(50) < bound.evaluate(1)

    def test_evaluate_approaches_delta(self):
        bound = theorem1_bound(CFG, PSI, BETA, LAMBDAS, tau_max=1, c_max=0.01)
        assert bound.evaluate(10_000) == pytest.approx(bound.delta, rel=1e-6)

    def test_rounds_to_reach_consistency(self):
        bound = ConvergenceBound(rho=0.9, delta=0.01, initial_gap=1.0)
        t = bound.rounds_to_reach(0.1)
        assert bound.evaluate(int(np.ceil(t))) <= 0.1 + 1e-9

    def test_negative_rounds_rejected(self):
        bound = ConvergenceBound(rho=0.9, delta=0.0, initial_gap=1.0)
        with pytest.raises(ValueError):
            bound.evaluate(-1)


class TestRoundsToEpsilon:
    def test_infeasible_when_delta_exceeds_epsilon(self):
        assert rounds_to_epsilon(0.9, delta=0.5, initial_gap=1.0, epsilon=0.1) == float("inf")

    def test_zero_when_already_converged(self):
        assert rounds_to_epsilon(0.9, delta=0.0, initial_gap=0.01, epsilon=0.5) == 0.0

    def test_matches_closed_form(self):
        t = rounds_to_epsilon(0.5, delta=0.0, initial_gap=1.0, epsilon=0.125)
        assert t == pytest.approx(3.0)

    def test_smaller_rho_needs_fewer_rounds(self):
        fast = rounds_to_epsilon(0.5, 0.0, 1.0, 0.01)
        slow = rounds_to_epsilon(0.95, 0.0, 1.0, 0.01)
        assert fast < slow

    def test_validation(self):
        with pytest.raises(ValueError):
            rounds_to_epsilon(1.5, 0.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            rounds_to_epsilon(0.5, -0.1, 1.0, 0.1)


class TestGroupingObjective:
    def test_positive_and_finite_in_feasible_regime(self):
        obj = grouping_objective(
            CFG, round_time=5.0, tau_max=1.0, psi=PSI, beta=BETA,
            lambdas=[0.0, 0.0], c_max=0.0,
        )
        assert np.isfinite(obj) and obj > 0

    def test_scales_with_round_time(self):
        kwargs = dict(tau_max=1.0, psi=PSI, beta=BETA, lambdas=[0.0, 0.0], c_max=0.0)
        assert grouping_objective(CFG, round_time=10.0, **kwargs) == pytest.approx(
            2 * grouping_objective(CFG, round_time=5.0, **kwargs)
        )

    def test_penalizes_staleness(self):
        kwargs = dict(round_time=5.0, psi=PSI, beta=BETA, lambdas=[0.0, 0.0], c_max=0.0)
        assert grouping_objective(CFG, tau_max=4.0, **kwargs) > grouping_objective(
            CFG, tau_max=0.0, **kwargs
        )

    def test_penalizes_non_iid_groups(self):
        kwargs = dict(round_time=5.0, tau_max=1.0, psi=PSI, beta=BETA, c_max=0.0)
        iid = grouping_objective(CFG, lambdas=[0.0, 0.0], **kwargs)
        skewed = grouping_objective(CFG, lambdas=[1.8, 1.8], **kwargs)
        assert skewed > iid

    def test_penalizes_non_iid_even_when_bound_is_vacuous(self):
        """In the surrogate regime (delta >= epsilon) ordering by EMD is preserved."""
        kwargs = dict(round_time=5.0, tau_max=1.0, psi=PSI, beta=BETA, c_max=0.0)
        mild = grouping_objective(CFG, lambdas=[0.8, 0.8], **kwargs)
        severe = grouping_objective(CFG, lambdas=[1.8, 1.8], **kwargs)
        assert np.isfinite(mild) and np.isfinite(severe)
        assert severe > mild

    def test_validation(self):
        with pytest.raises(ValueError):
            grouping_objective(CFG, 0.0, 1.0, PSI, BETA, LAMBDAS, 0.0)
        with pytest.raises(ValueError):
            grouping_objective(CFG, 1.0, -1.0, PSI, BETA, LAMBDAS, 0.0)
