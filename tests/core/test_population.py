"""Tests for the population-scale worker state surface (repro.core.population)."""

import numpy as np
import pytest

from repro import registry
from repro.core.config import AirFedGAConfig
from repro.core.grouping import GroupingProblem, contiguous_grouping
from repro.core.mechanism import GroupAsyncScheduler
from repro.core.population import (
    MATERIALIZATIONS,
    Population,
    ShardView,
    SharedDatasetStore,
    StackPool,
    WorkerStateTable,
    validate_materialization,
)
from repro.data.partition import partition_iid, partition_label_skew
from repro.sim.latency import build_uniform_latency


def _dataset(num_train=200, image_size=8, seed=0):
    return registry.create(
        "dataset",
        "synthetic-mnist",
        num_train=num_train,
        num_test=40,
        image_size=image_size,
        seed=seed,
    ).flattened()


# ----------------------------------------------------------------------
# materialization knob
# ----------------------------------------------------------------------
def test_validate_materialization_accepts_known_values():
    for value in MATERIALIZATIONS:
        assert validate_materialization(value) == value


def test_validate_materialization_did_you_mean():
    with pytest.raises(ValueError, match=r"did you mean 'lazy'"):
        validate_materialization("lzay")
    with pytest.raises(ValueError, match="unknown materialization"):
        validate_materialization("zzz")


# ----------------------------------------------------------------------
# WorkerStateTable
# ----------------------------------------------------------------------
def test_state_table_sizes_bit_identical_to_legacy_ops():
    raw = np.array([3, 5, 2, 9], dtype=np.int64)
    table = WorkerStateTable(raw_sizes=raw)
    # Legacy trainer init: astype(float64), conditional 1e-9 floor,
    # float(sum) normalization.  All positive -> no floor applied.
    legacy = raw.astype(np.float64)
    assert table.sizes.dtype == np.float64
    np.testing.assert_array_equal(table.sizes, legacy)
    assert table.total_size == float(legacy.sum())
    np.testing.assert_array_equal(table.alphas, legacy / float(legacy.sum()))


def test_state_table_floors_nonpositive_sizes():
    table = WorkerStateTable(raw_sizes=np.array([0, 4], dtype=np.int64))
    np.testing.assert_array_equal(
        table.sizes, np.maximum(np.array([0.0, 4.0]), 1e-9)
    )


def test_state_table_from_partition_matches_partition_sizes():
    dataset = _dataset()
    partition = partition_iid(dataset, num_workers=8, seed=0)
    latency = build_uniform_latency(8, base_time=2.0, heterogeneity_seed=1, seed=2)
    table = WorkerStateTable.from_partition(partition, latency=latency)
    np.testing.assert_array_equal(table.raw_sizes, partition.data_sizes())
    np.testing.assert_array_equal(table.latencies, latency.nominal)
    members = np.array([1, 3, 5])
    assert table.group_latency(members) == pytest.approx(
        float(latency.nominal[members].max())
    )
    assert table.alpha_mass(members) == pytest.approx(
        float(table.alphas[members].sum())
    )


def test_state_table_recorders():
    table = WorkerStateTable.uniform(6, shard_size=4)
    members = np.array([0, 2, 4], dtype=np.int64)
    table.record_dispatch(members)
    table.record_dispatch(members)
    table.record_unavailable(np.array([1], dtype=np.int64))
    table.record_dropped(np.array([], dtype=np.int64))  # empty is a no-op
    table.record_commit(members, staleness=3)
    assert table.dispatches.tolist() == [2, 0, 2, 0, 2, 0]
    assert table.unavailable.tolist() == [0, 1, 0, 0, 0, 0]
    assert table.dropped.sum() == 0
    assert table.staleness[members].tolist() == [3, 3, 3]
    summary = table.counters_summary()
    assert summary["dispatches"] == 6
    assert summary["max_staleness"] == 3
    assert table.nbytes > 0


def test_state_table_rejects_bad_shapes():
    with pytest.raises(ValueError):
        WorkerStateTable(raw_sizes=np.empty(0, dtype=np.int64))
    with pytest.raises(ValueError, match="latencies shape"):
        WorkerStateTable(
            raw_sizes=np.array([1, 2]), latencies=np.array([1.0])
        )


# ----------------------------------------------------------------------
# SharedDatasetStore
# ----------------------------------------------------------------------
def test_from_partition_shards_match_legacy_subset_and_are_views():
    dataset = _dataset()
    partition = partition_label_skew(
        dataset, num_workers=10, labels_per_worker=2, seed=0
    )
    store = SharedDatasetStore.from_partition(dataset, partition)
    for w in range(partition.num_workers):
        x_legacy, y_legacy = dataset.subset(partition.worker_indices(w))
        shard = store.shard(w)
        np.testing.assert_array_equal(shard.x, x_legacy)
        np.testing.assert_array_equal(shard.y, y_legacy)
        # Zero-copy: slice views into the one shared store.
        assert np.shares_memory(shard.x, store.x)
        assert np.shares_memory(shard.y, store.y)
    np.testing.assert_array_equal(store.data_sizes(), partition.data_sizes())
    np.testing.assert_array_equal(store.class_counts(), partition.class_counts())


def test_replicated_store_aliases_dataset_and_overlaps():
    dataset = _dataset(num_train=50)
    store = SharedDatasetStore.replicated(
        dataset, num_workers=200, shard_size=16, stride=3
    )
    assert store.x is dataset.x_train  # zero sample copies
    assert not store.copied
    assert store.num_workers == 200
    np.testing.assert_array_equal(store.data_sizes(), np.full(200, 16))
    shard = store.shard(7)
    assert isinstance(shard, ShardView)
    assert shard.num_samples == 16
    assert np.shares_memory(shard.x, dataset.x_train)
    # Class counts stay correct for overlapping windows (brute force check).
    counts = store.class_counts()
    for w in (0, 3, 199):
        expected = np.bincount(
            store.y[store.starts[w]:store.stops[w]], minlength=dataset.num_classes
        )
        np.testing.assert_array_equal(counts[w], expected)


def test_store_shard_sequence_is_lazy():
    dataset = _dataset(num_train=40)
    store = SharedDatasetStore.replicated(dataset, num_workers=30, shard_size=8)
    seq = store.shards()
    assert len(seq) == 30
    x, y = seq[4]  # tuple unpacking as legacy worker_data[i]
    assert np.shares_memory(x, store.x)
    assert np.shares_memory(seq[-1].x, store.x)
    assert len(seq[2:5]) == 3


def test_store_validates_windows():
    dataset = _dataset(num_train=20)
    with pytest.raises(ValueError, match="shard_size"):
        SharedDatasetStore.replicated(dataset, num_workers=4, shard_size=21)
    with pytest.raises(ValueError, match="out of bounds"):
        SharedDatasetStore(
            x=dataset.x_train,
            y=dataset.y_train,
            starts=np.array([0]),
            stops=np.array([999]),
            num_classes=10,
        )
    store = SharedDatasetStore.replicated(dataset, num_workers=4, shard_size=5)
    with pytest.raises(ValueError, match="invalid worker id"):
        store.shard(4)


# ----------------------------------------------------------------------
# StackPool / GroupBatch
# ----------------------------------------------------------------------
def test_stack_pool_recycles_buffers():
    pool = StackPool()
    a = pool.acquire(5, 3)
    assert a.shape == (5, 3)
    assert pool.outstanding == 1
    assert pool.release(a)
    assert pool.outstanding == 0
    assert pool.free_buffers == 1
    b = pool.acquire(4, 3)  # best-fit reuse of the freed 5x3 base
    assert b.shape == (4, 3)
    assert pool.free_buffers == 0
    assert pool.release(b)


def test_stack_pool_release_is_noop_for_foreign_arrays():
    pool = StackPool()
    foreign = np.zeros((2, 2))
    assert pool.release(foreign) is False
    assert pool.release(None) is False
    assert pool.outstanding == 0


def test_group_batch_stacks_and_shards():
    dataset = _dataset()
    partition = partition_iid(dataset, num_workers=6, seed=0)
    population = Population.from_dataset(
        dataset, partition, materialization="lazy"
    )
    batch = population.group_batch([1, 4, 5])
    assert batch.size == 3
    shards = batch.shards()
    assert all(np.shares_memory(s.x, population.store.x) for s in shards)
    stack = batch.stack(dim=7)
    assert stack.shape == (3, 7)
    assert population.stack_pool.outstanding == 1
    batch.release()
    assert population.stack_pool.outstanding == 0


# ----------------------------------------------------------------------
# Population facade
# ----------------------------------------------------------------------
def test_population_eager_matches_legacy_copies_lazy_shares_memory():
    dataset = _dataset()
    partition = partition_label_skew(
        dataset, num_workers=10, labels_per_worker=2, seed=0
    )
    eager = Population.from_dataset(dataset, partition, materialization="eager")
    lazy = Population.from_dataset(dataset, partition, materialization="lazy")
    for w in range(10):
        x_legacy, y_legacy = dataset.subset(partition.worker_indices(w))
        ex, ey = eager.worker_data(w)
        lx, ly = lazy.worker_data(w)
        np.testing.assert_array_equal(ex, x_legacy)
        np.testing.assert_array_equal(lx, x_legacy)
        np.testing.assert_array_equal(ey, y_legacy)
        np.testing.assert_array_equal(ly, y_legacy)
        assert not np.shares_memory(ex, dataset.x_train)
        assert np.shares_memory(lx, lazy.store.x)
    # Eager sequence is a materialized list; lazy is an O(1) view sequence.
    assert isinstance(eager.worker_data_sequence(), list)
    lazy_seq = lazy.worker_data_sequence()
    assert not isinstance(lazy_seq, list)
    assert np.shares_memory(lazy_seq[3].x, lazy.store.x)
    np.testing.assert_array_equal(
        eager.class_counts(), lazy.class_counts()
    )


def test_population_store_is_lazy_until_first_shard():
    dataset = _dataset()
    partition = partition_iid(dataset, num_workers=4, seed=0)
    population = Population.from_dataset(dataset, partition)
    assert not population.store_built
    population.shard(0)
    assert population.store_built


def test_population_requires_store_or_dataset():
    table = WorkerStateTable.uniform(3, shard_size=2)
    with pytest.raises(ValueError, match="prebuilt store"):
        Population(table)


def test_population_replicated_xl_construction_is_compact():
    """100k-worker construction smoke: O(N) scalars, O(1) sample storage."""
    dataset = _dataset(num_train=256)
    num_workers = 100_000
    population = Population.replicated(
        dataset, num_workers=num_workers, shard_size=32
    )
    assert population.num_workers == num_workers
    assert population.materialization == "lazy"
    # No sample copies at all; the resident footprint is the per-worker
    # scalar fields (~9 int64/float64 arrays) — well under 100 MB.
    assert population.store.x is dataset.x_train
    assert population.nbytes < 100 * 1024 * 1024
    shard = population.shard(num_workers - 1)
    assert shard.num_samples == 32
    assert np.shares_memory(shard.x, dataset.x_train)


# ----------------------------------------------------------------------
# contiguous grouping + group-level READY (the XL event-loop path)
# ----------------------------------------------------------------------
def _problem(num_workers):
    rng = np.random.default_rng(0)
    return GroupingProblem(
        data_sizes=np.full(num_workers, 8.0),
        class_counts=rng.integers(0, 5, size=(num_workers, 4)).astype(float),
        local_times=np.linspace(1.0, 2.0, num_workers),
        model_dimension=100,
        config=AirFedGAConfig(),
    )


def test_contiguous_grouping_covers_all_workers_with_arrays():
    result = contiguous_grouping(_problem(103), num_groups=10)
    assert result.strategy == "contiguous"
    assert len(result.groups) == 10
    assert all(isinstance(g, np.ndarray) for g in result.groups)
    flat = np.concatenate(result.groups)
    np.testing.assert_array_equal(np.sort(flat), np.arange(103))


def test_receive_group_ready_equivalent_to_per_member_loop():
    groups = [np.array([0, 1, 2]), np.array([3, 4])]
    a = GroupAsyncScheduler(groups)
    b = GroupAsyncScheduler(groups)
    for w in (0, 1, 2):
        completed = a.receive_ready(w)
    assert completed == 0
    assert b.receive_group_ready(0) == 0
    ev_a = a.complete_aggregation(0)
    ev_b = b.complete_aggregation(0)
    assert ev_a.round_index == ev_b.round_index == 1
    assert ev_a.staleness == ev_b.staleness
    np.testing.assert_array_equal(ev_a.member_ids, ev_b.member_ids)


def test_receive_group_ready_rejects_partial_state():
    scheduler = GroupAsyncScheduler([np.array([0, 1, 2])])
    scheduler.receive_ready(0)
    with pytest.raises(RuntimeError, match="partial"):
        scheduler.receive_group_ready(0)


def test_scheduler_array_groups_worker_map():
    scheduler = GroupAsyncScheduler([np.array([5, 2]), np.array([0, 7])])
    assert scheduler.group_of(5) == 0
    assert scheduler.group_of(7) == 1
    assert scheduler.workers() == [0, 2, 5, 7]
    with pytest.raises(KeyError):
        scheduler.group_of(3)
    with pytest.raises(ValueError, match="multiple groups"):
        GroupAsyncScheduler([np.array([0, 1]), np.array([1, 2])])


# ----------------------------------------------------------------------
# deprecation shims
# ----------------------------------------------------------------------
def test_partition_integer_indexing_is_deprecated_but_forwarding():
    dataset = _dataset()
    partition = partition_iid(dataset, num_workers=4, seed=0)
    with pytest.warns(DeprecationWarning, match="Partition.indices"):
        legacy = partition.indices[0]
    np.testing.assert_array_equal(legacy, partition.worker_indices(0))
    # List-like iteration and len stay silent.
    import warnings as _warnings

    with _warnings.catch_warnings():
        _warnings.simplefilter("error")
        assert len(partition.indices) == 4
        assert sum(ix.size for ix in partition.indices) == dataset.num_train


# ----------------------------------------------------------------------
# registered per-worker state fields (persistent mechanism state)
# ----------------------------------------------------------------------
def test_register_field_shapes_fill_and_idempotency():
    table = WorkerStateTable.uniform(6, shard_size=4)
    scalar = table.register_field("counter", dtype=np.int64, fill=0)
    vector = table.register_field("drift", width=5, fill=0.5)
    assert scalar.shape == (6,) and scalar.dtype == np.int64
    assert vector.shape == (6, 5) and vector.dtype == np.float64
    assert np.all(vector == 0.5)
    # Idempotent re-registration returns the same array, values preserved.
    vector[2] = 7.0
    again = table.register_field("drift", width=5)
    assert again is vector
    assert np.all(again[2] == 7.0)
    assert table.has_field("drift") and not table.has_field("nope")
    assert table.field_names() == ["counter", "drift"]
    assert table.field("drift") is vector


def test_register_field_rejects_mismatched_respec():
    table = WorkerStateTable.uniform(4, shard_size=4)
    table.register_field("drift", width=3)
    with pytest.raises(ValueError, match="already registered"):
        table.register_field("drift", width=4)
    with pytest.raises(ValueError, match="already registered"):
        table.register_field("drift", width=3, dtype=np.float32)
    with pytest.raises(ValueError, match="width"):
        table.register_field("bad", width=0)


def test_field_lookup_error_lists_known_fields():
    table = WorkerStateTable.uniform(4, shard_size=4)
    table.register_field("drift", width=2)
    with pytest.raises(KeyError, match="drift"):
        table.field("momentum")


def test_field_state_dict_round_trip_and_validation():
    table = WorkerStateTable.uniform(5, shard_size=4)
    drift = table.register_field("drift", width=3)
    drift[:] = np.arange(15, dtype=np.float64).reshape(5, 3)
    state = table.state_dict()
    # state_dict copies: mutating the snapshot leaves the table untouched.
    state["drift"][0, 0] = -1.0
    assert table.field("drift")[0, 0] == 0.0
    drift[:] = 0.0
    fresh = np.arange(15, dtype=np.float64).reshape(5, 3)
    table.load_state_dict({"drift": fresh})
    np.testing.assert_array_equal(table.field("drift"), fresh)
    # Loading writes in place: the registered array object is stable.
    assert table.field("drift") is drift
    with pytest.raises(KeyError, match="unregistered"):
        table.load_state_dict({"momentum": fresh})
    with pytest.raises(ValueError, match="shape mismatch"):
        table.load_state_dict({"drift": np.zeros((5, 4))})


def test_registered_fields_count_toward_nbytes():
    table = WorkerStateTable.uniform(8, shard_size=4)
    before = table.nbytes
    table.register_field("drift", width=100)
    assert table.nbytes == before + 8 * 100 * 8
