"""Unit tests for the Air-FedGA protocol state machine (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core import GroupAsyncScheduler, GroupState


class TestGroupState:
    def test_requires_members(self):
        with pytest.raises(ValueError):
            GroupState(group_id=0, members=[])

    def test_rejects_duplicate_members(self):
        with pytest.raises(ValueError):
            GroupState(group_id=0, members=[1, 1])

    def test_complete_and_reset(self):
        state = GroupState(group_id=0, members=[1, 2])
        state.ready_count = 2
        assert state.is_complete()
        state.reset_ready()
        assert state.ready_count == 0 and not state.is_complete()


class TestSchedulerConstruction:
    def test_rejects_empty_grouping(self):
        with pytest.raises(ValueError):
            GroupAsyncScheduler([])

    def test_rejects_overlapping_groups(self):
        with pytest.raises(ValueError, match="multiple groups"):
            GroupAsyncScheduler([[0, 1], [1, 2]])

    def test_group_lookup(self):
        sched = GroupAsyncScheduler([[0, 1], [2]])
        assert sched.num_groups == 2
        assert sched.group_of(2) == 1
        assert sched.group(1).members == [2]

    def test_unknown_worker_and_group(self):
        sched = GroupAsyncScheduler([[0]])
        with pytest.raises(KeyError):
            sched.group_of(5)
        with pytest.raises(KeyError):
            sched.group(3)

    def test_workers_listing(self):
        sched = GroupAsyncScheduler([[3, 1], [0, 2]])
        assert sched.workers() == [0, 1, 2, 3]


class TestProtocol:
    def test_ready_completes_group_only_when_all_members_ready(self):
        sched = GroupAsyncScheduler([[0, 1, 2]])
        assert sched.receive_ready(0) is None
        assert sched.receive_ready(1) is None
        assert sched.receive_ready(2) == 0

    def test_group_zero_completion_is_reported(self):
        """Regression test: group id 0 must not be confused with 'not complete'."""
        sched = GroupAsyncScheduler([[7]])
        assert sched.receive_ready(7) == 0

    def test_duplicate_ready_rejected(self):
        sched = GroupAsyncScheduler([[0, 1]])
        sched.receive_ready(0)
        with pytest.raises(ValueError, match="READY twice"):
            sched.receive_ready(0)

    def test_complete_aggregation_requires_full_group(self):
        sched = GroupAsyncScheduler([[0, 1]])
        sched.receive_ready(0)
        with pytest.raises(RuntimeError):
            sched.complete_aggregation(0)

    def test_round_counter_advances(self):
        sched = GroupAsyncScheduler([[0], [1]])
        sched.receive_ready(0)
        sched.complete_aggregation(0)
        sched.receive_ready(1)
        sched.complete_aggregation(1)
        assert sched.current_round == 2

    def test_ready_counter_resets_after_aggregation(self):
        sched = GroupAsyncScheduler([[0, 1]])
        for w in (0, 1):
            sched.receive_ready(w)
        sched.complete_aggregation(0)
        # The group can participate again.
        assert sched.receive_ready(0) is None
        assert sched.receive_ready(1) == 0


class TestStaleness:
    def test_first_participation_has_zero_staleness(self):
        sched = GroupAsyncScheduler([[0], [1]])
        sched.receive_ready(0)
        event = sched.complete_aggregation(0)
        assert event.round_index == 1
        assert event.staleness == 0

    def test_paper_fig2_example(self):
        """Reproduce the staleness bookkeeping of the paper's Fig. 2.

        Three groups; group 1 aggregates at rounds 1 and 2, group 2 at round
        3, group 3 at round 4.  Group 3 received the global model at round 0
        (before round 1), so its staleness at round 4 is 3.
        """
        sched = GroupAsyncScheduler([[0, 1], [2, 3], [4, 5]])

        def aggregate(group_members, gid):
            for w in group_members:
                sched.receive_ready(w)
            return sched.complete_aggregation(gid)

        e1 = aggregate([0, 1], 0)
        e2 = aggregate([0, 1], 0)
        e3 = aggregate([2, 3], 1)
        e4 = aggregate([4, 5], 2)
        assert (e1.round_index, e1.staleness) == (1, 0)
        assert (e2.round_index, e2.staleness) == (2, 0)
        assert (e3.round_index, e3.staleness) == (3, 2)
        assert (e4.round_index, e4.staleness) == (4, 3)

    def test_staleness_grows_while_group_waits(self):
        sched = GroupAsyncScheduler([[0], [1]])
        for _ in range(5):
            sched.receive_ready(0)
            sched.complete_aggregation(0)
        sched.receive_ready(1)
        event = sched.complete_aggregation(1)
        assert event.staleness == 5

    def test_staleness_resets_after_participation(self):
        sched = GroupAsyncScheduler([[0], [1]])
        sched.receive_ready(0); sched.complete_aggregation(0)
        sched.receive_ready(1); sched.complete_aggregation(1)
        sched.receive_ready(1)
        event = sched.complete_aggregation(1)
        assert event.staleness == 0

    def test_max_staleness_and_profile(self):
        sched = GroupAsyncScheduler([[0], [1]])
        for _ in range(3):
            sched.receive_ready(0)
            sched.complete_aggregation(0)
        sched.receive_ready(1)
        sched.complete_aggregation(1)
        assert sched.staleness_profile() == [0, 0, 0, 3]
        assert sched.max_staleness() == 3

    def test_participation_counts(self):
        sched = GroupAsyncScheduler([[0], [1]])
        for _ in range(2):
            sched.receive_ready(0)
            sched.complete_aggregation(0)
        assert sched.participation_counts() == [2, 0]

    def test_base_version_recorded(self):
        sched = GroupAsyncScheduler([[0], [1]])
        sched.receive_ready(0); sched.complete_aggregation(0)
        sched.receive_ready(0); e = sched.complete_aggregation(0)
        assert e.base_version == 1

    def test_history_is_a_copy(self):
        sched = GroupAsyncScheduler([[0]])
        sched.receive_ready(0)
        sched.complete_aggregation(0)
        sched.history.clear()
        assert len(sched.history) == 1
