"""Unit tests for the core configuration objects."""

from __future__ import annotations

import pytest

from repro.core import (
    AirCompConfig,
    AirFedGAConfig,
    ConvergenceConfig,
    GroupingConfig,
    ParallelismConfig,
)


class TestAirCompConfig:
    def test_paper_defaults(self):
        cfg = AirCompConfig()
        assert cfg.noise_variance == 1.0
        assert cfg.energy_budget_j == 10.0
        assert cfg.bandwidth_hz == 1e6

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"noise_variance": -1.0},
            {"energy_budget_j": 0.0},
            {"num_subchannels": 0},
            {"symbol_duration_s": 0.0},
            {"bandwidth_hz": 0.0},
            {"power_control_tolerance": 0.0},
            {"power_control_max_iters": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AirCompConfig(**kwargs)

    def test_zero_noise_allowed(self):
        assert AirCompConfig(noise_variance=0.0).noise_variance == 0.0


class TestGroupingConfig:
    def test_default_xi_is_paper_operating_point(self):
        assert GroupingConfig().xi == pytest.approx(0.3)

    @pytest.mark.parametrize(
        "kwargs",
        [{"xi": -0.1}, {"emd_weight": -1.0}, {"tie_break_seed": -1}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GroupingConfig(**kwargs)

    def test_zero_xi_allowed(self):
        assert GroupingConfig(xi=0.0).xi == 0.0


class TestConvergenceConfig:
    def test_default_gamma_in_theorem_range(self):
        cfg = ConvergenceConfig()
        assert 1.0 / (2 * cfg.smoothness_L) < cfg.learning_rate_gamma < 1.0 / cfg.smoothness_L

    def test_gamma_outside_theorem_range_rejected(self):
        with pytest.raises(ValueError, match="1/\\(2L\\)"):
            ConvergenceConfig(learning_rate_gamma=0.3)
        with pytest.raises(ValueError):
            ConvergenceConfig(learning_rate_gamma=1.5)

    def test_mu_cannot_exceed_l(self):
        with pytest.raises(ValueError):
            ConvergenceConfig(strong_convexity_mu=2.0, smoothness_L=1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"smoothness_L": 0.0},
            {"strong_convexity_mu": -0.1},
            {"gradient_bound_G": 0.0},
            {"model_bound_W": 0.0},
            {"initial_gap": 0.0},
            {"target_epsilon": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ConvergenceConfig(**kwargs)


class TestParallelismConfig:
    def test_defaults_are_serial(self):
        cfg = ParallelismConfig()
        assert cfg.mode == "none"
        assert cfg.num_processes is None
        assert cfg.start_method == "fork"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "threads"},
            {"num_processes": 0},
            {"start_method": "teleport"},
            {"min_group_size": 0},
            {"max_restarts": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ParallelismConfig(**kwargs)


class TestAirFedGAConfig:
    def test_default_composition(self):
        cfg = AirFedGAConfig()
        assert isinstance(cfg.aircomp, AirCompConfig)
        assert isinstance(cfg.grouping, GroupingConfig)
        assert isinstance(cfg.convergence, ConvergenceConfig)
        assert isinstance(cfg.parallelism, ParallelismConfig)

    def test_sub_configs_are_independent_instances(self):
        a, b = AirFedGAConfig(), AirFedGAConfig()
        assert a.aircomp is not b.aircomp
