"""Unit tests for the power-control algorithm (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import aggregation_error_term, transmit_energy
from repro.core import AirCompConfig, feasible_sigma, optimal_eta, solve_power_control


CFG = AirCompConfig(noise_variance=1e-3, energy_budget_j=10.0)


class TestOptimalEta:
    def test_closed_form_value(self):
        # eta = ((sigma^2 W^2 + sv/D^2) / (sigma W^2))^2
        sigma, W, sv, D = 0.5, 2.0, 0.04, 2.0
        expected = ((sigma**2 * W**2 + sv / D**2) / (sigma * W**2)) ** 2
        assert optimal_eta(sigma, W, sv, D) == pytest.approx(expected)

    def test_is_stationary_point_of_error_term(self):
        """The returned eta must be a minimizer of C_t for the given sigma."""
        sigma, W, sv, D = 0.7, 3.0, 0.01, 5.0
        eta_star = optimal_eta(sigma, W, sv, D)
        c_star = aggregation_error_term(sigma, eta_star, W, sv, D)
        for factor in (0.5, 0.9, 1.1, 2.0):
            assert c_star <= aggregation_error_term(sigma, eta_star * factor, W, sv, D) + 1e-12

    def test_noiseless_case_matches_sigma(self):
        # With zero noise the optimum is sqrt(eta) = sigma (no shrinkage).
        assert optimal_eta(0.5, 2.0, 0.0, 1.0) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_eta(0.0, 1.0, 0.1, 1.0)
        with pytest.raises(ValueError):
            optimal_eta(1.0, 0.0, 0.1, 1.0)
        with pytest.raises(ValueError):
            optimal_eta(1.0, 1.0, 0.1, 0.0)


class TestFeasibleSigma:
    def test_unconstrained_optimum_is_sqrt_eta(self):
        sigma = feasible_sigma(
            eta=4.0, model_bound=1.0,
            data_sizes=[1.0], channel_gains=[100.0], energy_budgets=[1e6],
        )
        assert sigma == pytest.approx(2.0)

    def test_energy_cap_binds(self):
        sigma = feasible_sigma(
            eta=100.0, model_bound=2.0,
            data_sizes=[4.0], channel_gains=[1.0], energy_budgets=[16.0],
        )
        # cap = h*sqrt(E)/(d*W) = 1*4/(4*2) = 0.5 < sqrt(eta) = 10
        assert sigma == pytest.approx(0.5)

    def test_cap_is_minimum_over_workers(self):
        sigma = feasible_sigma(
            eta=1e6, model_bound=1.0,
            data_sizes=[1.0, 2.0], channel_gains=[1.0, 1.0],
            energy_budgets=[1.0, 1.0],
        )
        assert sigma == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            feasible_sigma(0.0, 1.0, [1.0], [1.0], [1.0])
        with pytest.raises(ValueError):
            feasible_sigma(1.0, 1.0, [], [], [])
        with pytest.raises(ValueError):
            feasible_sigma(1.0, 1.0, [1.0], [1.0, 2.0], [1.0])


class TestSolvePowerControl:
    def _solve(self, **overrides):
        kwargs = dict(
            data_sizes=[20.0, 30.0, 50.0],
            channel_gains=[0.8, 1.2, 1.0],
            model_bound=10.0,
            config=CFG,
        )
        kwargs.update(overrides)
        return solve_power_control(**kwargs)

    def test_converges(self):
        result = self._solve()
        assert result.converged
        assert result.iterations <= CFG.power_control_max_iters

    def test_sigma_respects_energy_cap(self):
        result = self._solve()
        assert result.sigma <= result.sigma_cap + 1e-12

    def test_energy_budget_satisfied_for_every_worker(self):
        """Constraint (41b): a worker transmitting a vector of norm W_t stays within budget."""
        sizes = np.array([20.0, 30.0, 50.0])
        gains = np.array([0.8, 1.2, 1.0])
        result = self._solve()
        w = np.zeros(4)
        w[0] = 10.0  # norm exactly the model bound
        for d, h in zip(sizes, gains):
            assert transmit_energy(w, d, h, result.sigma) <= CFG.energy_budget_j + 1e-9

    def test_error_term_not_worse_than_naive_choices(self):
        result = self._solve()
        group = 100.0
        naive = aggregation_error_term(result.sigma_cap, 1.0, 10.0, CFG.noise_variance, group)
        assert result.error_term <= naive

    def test_eta_is_optimal_for_final_sigma(self):
        result = self._solve()
        group = 100.0
        eta_expected = optimal_eta(result.sigma, 10.0, CFG.noise_variance, group)
        assert result.eta == pytest.approx(eta_expected, rel=1e-4)

    def test_alternation_monotonically_improves(self):
        result = self._solve()
        errors = [h[2] for h in result.history]
        assert all(b <= a + 1e-9 for a, b in zip(errors, errors[1:]))

    def test_zero_noise_gives_zero_error(self):
        cfg = AirCompConfig(noise_variance=0.0)
        result = self._solve(config=cfg)
        assert result.error_term == pytest.approx(0.0, abs=1e-15)
        # With no noise the matched condition sigma = sqrt(eta) is optimal.
        assert result.sigma == pytest.approx(np.sqrt(result.eta), rel=1e-6)

    def test_larger_budget_does_not_hurt(self):
        tight = self._solve(config=AirCompConfig(noise_variance=1e-3, energy_budget_j=1.0))
        loose = self._solve(config=AirCompConfig(noise_variance=1e-3, energy_budget_j=100.0))
        assert loose.error_term <= tight.error_term + 1e-12

    def test_per_worker_budgets_override_default(self):
        result = self._solve(energy_budgets=[1.0, 1.0, 1.0])
        default = self._solve()
        assert result.sigma_cap < default.sigma_cap

    def test_custom_initial_sigma(self):
        a = self._solve(initial_sigma=1e-6)
        b = self._solve()
        # The alternation is initial-condition dependent (Algorithm 2 takes
        # σ_t as an input); both runs must stay feasible, and the default
        # start at the energy cap must not be worse than a tiny start.
        assert a.sigma <= a.sigma_cap + 1e-12
        assert b.error_term <= a.error_term + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            self._solve(data_sizes=[], channel_gains=[])
        with pytest.raises(ValueError):
            self._solve(model_bound=0.0)
        with pytest.raises(ValueError):
            self._solve(energy_budgets=[1.0])
        with pytest.raises(ValueError):
            self._solve(initial_sigma=0.0)
