"""Fixtures for the ``tools/`` test suite (analysis checkers, doc checks)."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"

# ``tools`` is a repo-root package; make it importable regardless of how
# pytest was invoked (the Makefile only exports PYTHONPATH=src).
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))


@pytest.fixture(scope="session")
def fixtures_dir() -> Path:
    return FIXTURES
