"""Analysis fixture: every RNG rule fires at least once.

Never imported — parsed by ``tools.analysis`` self-tests only.
"""

import random
import time
from random import randint

import numpy as np


def module_state_numpy():
    return np.random.rand(3)  # RNG001


def module_state_numpy_seed():
    np.random.seed(0)  # RNG001 (seeding module state is still module state)


def stdlib_random():
    a = random.random()  # RNG002
    b = randint(0, 10)  # RNG002 (from-import)
    return a + b


def wall_clock_seed():
    return np.random.default_rng(int(time.time()))  # RNG003


def wall_clock_keyword(make):
    return make(seed=time.time_ns())  # RNG003 (seed= keyword)


def entropy_seed():
    return np.random.default_rng()  # RNG004


def entropy_seed_sequence():
    return np.random.SeedSequence()  # RNG004


def allowed_with_reason():
    # analyze: allow-rng(fixture demonstrates the escape hatch)
    return np.random.rand(3)


def reasonless_allow_does_not_suppress():
    return np.random.rand(3)  # analyze: allow-rng()
