"""Analysis fixture: every lifecycle rule fires at least once.

Never imported — parsed by ``tools.analysis`` self-tests only.
"""

from multiprocessing.shared_memory import SharedMemory


def leaky_create(nbytes):
    shm = SharedMemory(create=True, size=nbytes)  # LIFE001: no close/unlink
    return shm.name


def leaky_attach(name):
    shm = SharedMemory(name=name)  # LIFE002: no close
    return bytes(shm.buf[:4])


def dropped_bare(executor, members):
    executor.submit_group(members)  # LIFE003: bare expression


def dropped_binding(executor, members):
    future = executor.submit_group(members)  # LIFE003: never used again
    return len(members)
