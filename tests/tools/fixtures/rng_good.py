"""Analysis fixture: keyed-stream RNG discipline — no rule fires.

Never imported — parsed by ``tools.analysis`` self-tests only.
"""

import random

import numpy as np


def keyed_stream(seed):
    rng = np.random.default_rng(np.random.SeedSequence([seed, 7]))
    return rng.random(3)


def explicit_generator(seed):
    return np.random.Generator(np.random.PCG64(seed))


def seeded_stdlib_instance(seed):
    return random.Random(seed).random()


def generator_method_calls(rng):
    # Calls on a Generator instance are fine: the stream is keyed upstream.
    return rng.normal(size=4) + rng.integers(0, 2)
