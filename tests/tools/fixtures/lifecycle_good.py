"""Analysis fixture: clean resource lifecycle — no rule fires.

Never imported — parsed by ``tools.analysis`` self-tests only.
"""

from multiprocessing.shared_memory import SharedMemory


def balanced_create(nbytes):
    shm = SharedMemory(create=True, size=nbytes)
    try:
        return bytes(shm.buf[:4])
    finally:
        shm.close()
        shm.unlink()


def balanced_attach(name):
    shm = SharedMemory(name=name)
    try:
        return bytes(shm.buf[:4])
    finally:
        shm.close()


def consumed_future(executor, members):
    future = executor.submit_group(members)
    return future.result()


def discarded_future(executor, members):
    future = executor.submit_group(members)
    future.discard()


def allowed_drop(executor, members):
    # analyze: allow-lifecycle(fire-and-forget is intentional here)
    executor.submit_group(members)
