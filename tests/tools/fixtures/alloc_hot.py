"""Analysis fixture for the hot-path allocation checker.

Never imported — parsed by ``tools.analysis`` self-tests only.  The
self-test declares ``Kernel.forward`` / ``Kernel.backward`` as hot.
"""

import numpy as np


class Kernel:
    def __init__(self, shape):
        self.buf = np.empty(shape)  # cold path: __init__ may allocate

    def forward(self, x):
        fresh = np.zeros(x.shape)  # ALLOC001
        stacked = np.stack([x, x])  # ALLOC001
        dup = np.asarray(x).copy()  # ALLOC001 (.copy() method)
        # analyze: allow-alloc(first-touch buffer, cached for reuse)
        allowed = np.empty(x.shape)
        np.copyto(self.buf, x)  # in-place: fine
        inner = [np.ones(2) for _ in range(2)]  # ALLOC001 (nested scope)
        return fresh, stacked, dup, allowed, inner

    def backward(self, grad):
        out = np.empty_like(grad)  # analyze: allow-alloc(reasoned escape)
        np.multiply(grad, 2.0, out=out)
        return out


def cold_helper(x):
    return np.zeros(x.shape)  # not a declared hot path: silent
