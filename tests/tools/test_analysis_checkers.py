"""Positive/negative fixture self-tests for every analysis checker.

Each checker must (a) fire on the deliberate violations in its ``*_bad``
fixture, (b) stay silent on the disciplined ``*_good`` twin, and (c)
honor the ``# analyze: allow-<tag>(reason)`` escape hatch.  The fixtures
under ``tests/tools/fixtures/`` are parsed, never imported.
"""

from __future__ import annotations

from tools.analysis import (
    HotPathAllocationChecker,
    ResourceLifecycleChecker,
    RngDisciplineChecker,
    run_checkers,
)


def run_on(checker, fixtures_dir, filename):
    return run_checkers(
        [checker], [fixtures_dir / filename], root=fixtures_dir
    )


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestRngDiscipline:
    def test_bad_fixture_fires_every_rule(self, fixtures_dir):
        findings = run_on(RngDisciplineChecker(), fixtures_dir, "rng_bad.py")
        assert rules_of(findings) == ["RNG001", "RNG002", "RNG003", "RNG004"]

    def test_bad_fixture_exact_counts(self, fixtures_dir):
        findings = run_on(RngDisciplineChecker(), fixtures_dir, "rng_bad.py")
        by_rule = {rule: 0 for rule in ("RNG001", "RNG002", "RNG003", "RNG004")}
        for f in findings:
            by_rule[f.rule] += 1
        # 2 module-state np calls + 1 reasonless-allow; 2 stdlib; 2 wall
        # clock; 2 entropy constructors.
        assert by_rule == {"RNG001": 3, "RNG002": 2, "RNG003": 2, "RNG004": 2}

    def test_reasoned_allow_is_suppressed(self, fixtures_dir):
        import re

        findings = run_on(RngDisciplineChecker(), fixtures_dir, "rng_bad.py")
        source = (fixtures_dir / "rng_bad.py").read_text().splitlines()
        reasoned = re.compile(r"allow-rng\([^)]+\)")
        for f in findings:
            # Neither the flagged line nor the one above carries a
            # *reasoned* allow (the reasonless one still fires).
            assert not reasoned.search(source[f.line - 1])
            assert not reasoned.search(source[f.line - 2])

    def test_good_fixture_is_silent(self, fixtures_dir):
        assert run_on(RngDisciplineChecker(), fixtures_dir, "rng_good.py") == []

    def test_findings_carry_keyed_stream_hint(self, fixtures_dir):
        findings = run_on(RngDisciplineChecker(), fixtures_dir, "rng_bad.py")
        rng001 = [f for f in findings if f.rule == "RNG001"]
        assert all("SeedSequence" in f.hint for f in rng001)


class TestHotPathAllocation:
    HOT = {"alloc_hot.py": {"Kernel.forward", "Kernel.backward"}}

    def checker(self):
        return HotPathAllocationChecker(hot_paths=self.HOT)

    def test_hot_scope_allocations_fire(self, fixtures_dir):
        findings = run_on(self.checker(), fixtures_dir, "alloc_hot.py")
        assert rules_of(findings) == ["ALLOC001"]
        # np.zeros, np.stack, .copy() and the comprehension's np.ones.
        assert len(findings) == 4

    def test_method_copy_is_caught(self, fixtures_dir):
        findings = run_on(self.checker(), fixtures_dir, "alloc_hot.py")
        assert any(".copy" in f.message for f in findings)

    def test_cold_paths_and_allows_are_silent(self, fixtures_dir):
        findings = run_on(self.checker(), fixtures_dir, "alloc_hot.py")
        lines = (fixtures_dir / "alloc_hot.py").read_text().splitlines()
        flagged = {f.line for f in findings}
        for lineno, line in enumerate(lines, start=1):
            if "allow-alloc(" in line or "cold" in line:
                assert lineno not in flagged

    def test_undeclared_module_is_skipped(self, fixtures_dir):
        checker = HotPathAllocationChecker(hot_paths={"other.py": {"*"}})
        assert run_on(checker, fixtures_dir, "alloc_hot.py") == []

    def test_star_scope_audits_everything(self, fixtures_dir):
        checker = HotPathAllocationChecker(hot_paths={"alloc_hot.py": {"*"}})
        findings = run_on(checker, fixtures_dir, "alloc_hot.py")
        # cold_helper's np.zeros now counts too (module body __init__ call
        # has the Kernel.__init__ qualname, also audited under "*").
        assert len(findings) > 4

    def test_repo_hot_paths_are_declared_for_real_files(self):
        from tools.analysis import HOT_PATHS
        from tools.analysis.core import REPO_ROOT

        for rel in HOT_PATHS:
            assert (REPO_ROOT / rel).exists(), rel


class TestResourceLifecycle:
    def test_bad_fixture_fires_every_rule(self, fixtures_dir):
        findings = run_on(
            ResourceLifecycleChecker(), fixtures_dir, "lifecycle_bad.py"
        )
        assert rules_of(findings) == ["LIFE001", "LIFE002", "LIFE003"]

    def test_bare_and_unused_futures_both_fire(self, fixtures_dir):
        findings = run_on(
            ResourceLifecycleChecker(), fixtures_dir, "lifecycle_bad.py"
        )
        life3 = [f for f in findings if f.rule == "LIFE003"]
        assert len(life3) == 2

    def test_good_fixture_is_silent(self, fixtures_dir):
        assert (
            run_on(ResourceLifecycleChecker(), fixtures_dir, "lifecycle_good.py")
            == []
        )

    def test_real_executor_module_is_clean(self):
        from tools.analysis.core import REPO_ROOT

        findings = run_checkers(
            [ResourceLifecycleChecker()],
            [REPO_ROOT / "src" / "repro" / "parallel" / "executor.py"],
        )
        assert findings == []
