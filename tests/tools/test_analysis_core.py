"""Framework tests for ``tools.analysis.core``: findings, allows, baseline."""

from __future__ import annotations

import json

import pytest

from tools.analysis.core import Baseline, Checker, Finding, Module, run_checkers


def write_module(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return path


class TestFinding:
    def test_format_carries_location_rule_and_hint(self):
        f = Finding("RNG001", "pkg/mod.py", 12, "bad call", hint="use keyed rng")
        assert f.format() == "pkg/mod.py:12: RNG001 bad call  [fix: use keyed rng]"

    def test_fingerprint_is_line_number_free(self):
        a = Finding("ALLOC001", "m.py", 10, "np.zeros(...) allocates")
        b = Finding("ALLOC001", "m.py", 99, "np.zeros(...) allocates")
        assert a.fingerprint == b.fingerprint

    def test_to_dict_round_trips_through_baseline(self):
        f = Finding("LIFE001", "m.py", 3, "leak", hint="close it")
        baseline = Baseline.from_findings([f])
        assert baseline.fingerprints == [f.fingerprint]


class TestModuleAllows:
    def test_allow_comment_on_same_line(self, tmp_path):
        path = write_module(
            tmp_path, "m.py", "x = 1  # analyze: allow-alloc(first touch)\n"
        )
        module = Module(path, root=tmp_path)
        stmt = module.tree.body[0]
        assert module.allows("alloc", stmt)
        assert not module.allows("rng", stmt)

    def test_allow_comment_on_line_above_statement(self, tmp_path):
        path = write_module(
            tmp_path,
            "m.py",
            "# analyze: allow-rng(legacy seed path)\nx = 1\n",
        )
        module = Module(path, root=tmp_path)
        assert module.allows("rng", module.tree.body[0])

    def test_reasonless_allow_is_ignored(self, tmp_path):
        path = write_module(tmp_path, "m.py", "x = 1  # analyze: allow-alloc()\n")
        module = Module(path, root=tmp_path)
        assert not module.allows("alloc", module.tree.body[0])

    def test_allow_reason_text_is_recovered(self, tmp_path):
        path = write_module(
            tmp_path, "m.py", "x = 1  # analyze: allow-lifecycle(fire and forget)\n"
        )
        module = Module(path, root=tmp_path)
        assert module.allow_reason("lifecycle", 1) == "fire and forget"


class _StaticChecker(Checker):
    """Emits one fixed finding per module, twice (dedup fodder)."""

    name = "static"
    rules = {"TST001": "test rule"}

    def check_module(self, module):
        f = Finding("TST001", module.rel, 1, "same message")
        return [f, f]


class TestRunCheckers:
    def test_identical_findings_are_deduplicated(self, tmp_path):
        write_module(tmp_path, "m.py", "x = 1\n")
        findings = run_checkers([_StaticChecker()], [tmp_path], root=tmp_path)
        assert len(findings) == 1

    def test_findings_sorted_by_path_then_line(self, tmp_path):
        write_module(tmp_path, "b.py", "x = 1\n")
        write_module(tmp_path, "a.py", "x = 1\n")
        findings = run_checkers([_StaticChecker()], [tmp_path], root=tmp_path)
        assert [f.path for f in findings] == ["a.py", "b.py"]

    def test_directory_and_file_paths_both_accepted(self, tmp_path):
        path = write_module(tmp_path, "m.py", "x = 1\n")
        by_dir = run_checkers([_StaticChecker()], [tmp_path], root=tmp_path)
        by_file = run_checkers([_StaticChecker()], [path], root=tmp_path)
        assert by_dir == by_file


class TestBaseline:
    def test_missing_file_loads_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "missing.json")
        assert baseline.fingerprints == []

    def test_save_load_round_trip(self, tmp_path):
        f = Finding("RNG001", "m.py", 5, "bad")
        path = tmp_path / "baseline.json"
        Baseline.from_findings([f]).save(path)
        assert Baseline.load(path).fingerprints == [f.fingerprint]

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="unsupported baseline format"):
            Baseline.load(path)

    def test_compare_splits_new_and_stale(self):
        old = Finding("RNG001", "m.py", 5, "grandfathered")
        gone = Finding("RNG001", "m.py", 9, "since fixed")
        new = Finding("ALLOC001", "m.py", 7, "fresh violation")
        baseline = Baseline.from_findings([old, gone])
        new_findings, stale = baseline.compare([old, new])
        assert new_findings == [new]
        assert stale == [gone.fingerprint]

    def test_compare_empty_baseline_everything_is_new(self):
        f = Finding("LIFE001", "m.py", 1, "leak")
        new_findings, stale = Baseline().compare([f])
        assert new_findings == [f]
        assert stale == []
