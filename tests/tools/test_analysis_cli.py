"""End-to-end tests for ``python -m tools.analysis`` (the CLI)."""

from __future__ import annotations

import json

from tools.analysis.__main__ import main


class TestNoBaselineMode:
    def test_violations_exit_nonzero(self, fixtures_dir, capsys):
        rc = main([str(fixtures_dir / "rng_bad.py"), "--no-baseline"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "RNG001" in out

    def test_clean_tree_exits_zero(self, fixtures_dir, capsys):
        rc = main([str(fixtures_dir / "rng_good.py"), "--no-baseline"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 finding(s)" in out


class TestBaselineMode:
    def test_update_then_rerun_is_green(self, fixtures_dir, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        target = str(fixtures_dir / "rng_bad.py")
        assert main([target, "--baseline", str(baseline), "--update-baseline"]) == 0
        assert main([target, "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "analyze: ok" in out

    def test_new_finding_fails_against_empty_baseline(
        self, fixtures_dir, tmp_path
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"version": 1, "findings": []}))
        rc = main([str(fixtures_dir / "rng_bad.py"), "--baseline", str(baseline)])
        assert rc == 1

    def test_stale_entry_fails_shrink_only(self, fixtures_dir, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "findings": [
                        {
                            "rule": "RNG001",
                            "path": "rng_good.py",
                            "line": 1,
                            "message": "long since fixed",
                            "hint": "",
                        }
                    ],
                }
            )
        )
        rc = main([str(fixtures_dir / "rng_good.py"), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "STALE" in out

    def test_committed_repo_baseline_is_empty(self):
        from tools.analysis.__main__ import DEFAULT_BASELINE

        document = json.loads(DEFAULT_BASELINE.read_text())
        assert document == {"version": 1, "findings": []}


class TestJsonAndListing:
    def test_json_report_written(self, fixtures_dir, tmp_path):
        report = tmp_path / "out" / "findings.json"
        main(
            [
                str(fixtures_dir / "lifecycle_bad.py"),
                "--no-baseline",
                "--json",
                str(report),
            ]
        )
        document = json.loads(report.read_text())
        rules = {f["rule"] for f in document["findings"]}
        assert {"LIFE001", "LIFE002", "LIFE003"} <= rules
        assert all(
            {"rule", "path", "line", "message", "hint"} <= set(f)
            for f in document["findings"]
        )

    def test_list_rules_prints_every_rule_id(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "RNG001",
            "RNG002",
            "RNG003",
            "RNG004",
            "ALLOC001",
            "LIFE001",
            "LIFE002",
            "LIFE003",
            "REG001",
            "REG002",
            "REG003",
            "REG004",
        ):
            assert rule in out


class TestRepoIsClean:
    def test_default_run_on_src_repro_is_green(self, capsys):
        assert main([]) == 0
        assert "analyze: ok" in capsys.readouterr().out
