"""Self-tests for the registry-consistency checker (REG001-REG004).

The checker runs against the *real* registry, so the positive cases
temporarily register throwaway components and always unregister them.
"""

from __future__ import annotations

import contextlib
import inspect

from repro import registry
from tools.analysis import RegistryConsistencyChecker, run_checkers
from tools.analysis.core import REPO_ROOT, Module, Project


def project_with_repro():
    """A minimal project whose module set gates the checker on."""
    path = REPO_ROOT / "src" / "repro" / "registry.py"
    return Project(root=REPO_ROOT, modules=[Module(path, root=REPO_ROOT)])


def src_components():
    """(kind, name, factory) for the library's own registrations only.

    Other test modules may leave throwaway components registered in this
    process; like the checker's ``scope_prefix``, the whole-registry
    assertions below must not depend on test execution order.
    """
    src_root = str(REPO_ROOT / "src")
    for kind in registry.kinds():
        for name, factory in sorted(registry.as_dict(kind).items()):
            try:
                source = inspect.getsourcefile(factory) or ""
            except TypeError:
                source = ""
            if source.startswith(src_root):
                yield kind, name, factory


def unscoped_checker():
    """A checker that audits test-registered components too.

    The default ``scope_prefix="src/"`` ignores factories defined
    outside the library (plug-ins, this very test suite), so the
    positive cases below opt out of the restriction.
    """
    return RegistryConsistencyChecker(scope_prefix="")


@contextlib.contextmanager
def temporary_component(kind, name, factory):
    registry.register(kind, name)(factory)
    try:
        yield
    finally:
        registry._REGISTRY[kind].pop(name, None)


class GoodDocumentedModel:
    """Stand-in factory with a clean, inspectable signature."""

    def __init__(self, num_workers: int = 1) -> None:
        self.num_workers = num_workers


class TestGating:
    def test_skipped_without_src_repro_modules(self, fixtures_dir):
        findings = run_checkers(
            [RegistryConsistencyChecker()],
            [fixtures_dir / "rng_good.py"],
            root=fixtures_dir,
        )
        assert findings == []

    def test_real_registry_is_clean(self):
        findings = list(
            RegistryConsistencyChecker().check_project(project_with_repro())
        )
        assert findings == []


class TestUndocumented:
    def test_unknown_name_fires_reg001(self):
        with temporary_component(
            "model", "zz-analysis-test-model", GoodDocumentedModel
        ):
            findings = list(
                unscoped_checker().check_project(project_with_repro())
            )
        # Filter to our component: other suites may have left their own
        # throwaway registrations behind in this process.
        reg001 = [
            f
            for f in findings
            if f.rule == "REG001" and "zz-analysis-test-model" in f.message
        ]
        assert len(reg001) == 1
        assert "model:zz-analysis-test-model" in reg001[0].message
        # Cleanup restores a clean project.
        assert (
            list(RegistryConsistencyChecker().check_project(project_with_repro()))
            == []
        )

    def test_documented_names_do_not_match_substrings(self):
        from tools.analysis.registry_rules import _mentioned

        text = "`label-skew` and `iid` are documented; so is staleness."
        assert _mentioned("label-skew", text)
        assert _mentioned("iid", text)
        assert not _mentioned("skew", text)  # inside a hyphenated word
        assert not _mentioned("stale", text)  # prefix of a longer word


class TestIntrospection:
    def test_opaque_factory_fires_reg002(self):
        class Opaque:
            """Callable whose signature introspection always fails."""

            @property
            def __signature__(self):
                raise ValueError("no signature")

            def __call__(self):  # pragma: no cover - never invoked
                return None

        with temporary_component("model", "zz-analysis-opaque", Opaque()):
            findings = list(
                unscoped_checker().check_project(project_with_repro())
            )
        reg002 = [
            f
            for f in findings
            if f.rule == "REG002" and "zz-analysis-opaque" in f.message
        ]
        assert len(reg002) == 1
        assert "model:zz-analysis-opaque" in reg002[0].message

    def test_accepted_parameters_works_for_all_builtins(self):
        checked = 0
        for kind, name, factory in src_components():
            registry.accepted_parameters(factory)
            checked += 1
        assert checked >= 25  # every built-in component has a signature


class TestScenarioReachability:
    def test_every_kind_is_reachable(self):
        from repro.experiments.scenario import SCENARIO_COMPONENT_KINDS

        builtin_kinds = {kind for kind, _, _ in src_components()}
        assert builtin_kinds
        assert builtin_kinds <= set(SCENARIO_COMPONENT_KINDS.values())

    def test_unreachable_kind_fires_reg003(self):
        with temporary_component(
            "zz-test-kind", "zz-name", GoodDocumentedModel
        ):
            findings = list(
                unscoped_checker().check_project(project_with_repro())
            )
        reg003 = [
            f
            for f in findings
            if f.rule == "REG003" and "zz-test-kind" in f.message
        ]
        assert len(reg003) == 1


class TestExportDiscipline:
    def test_unexported_factory_fires_reg004(self):
        def hidden_factory(num_workers: int = 1):
            return num_workers

        # Claim definition in repro.registry without actually living there:
        # plug-in users could never import it from where it says it lives.
        hidden_factory.__module__ = "repro.registry"
        hidden_factory.__qualname__ = "zz_analysis_hidden_factory"
        hidden_factory.__name__ = "zz_analysis_hidden_factory"
        with temporary_component(
            "model", "zz-analysis-hidden", hidden_factory
        ):
            findings = list(
                unscoped_checker().check_project(project_with_repro())
            )
        reg004 = [f for f in findings if f.rule == "REG004"]
        assert reg004
        assert any("module-level attribute" in f.message for f in reg004)

    def test_builtin_factories_are_all_exported(self):
        # The real-registry cleanliness test covers this, but pin the
        # specific property: every factory's defining module exports it.
        import importlib

        for kind, name, factory in src_components():
            module = importlib.import_module(factory.__module__)
            top = factory.__qualname__.split(".")[0]
            assert getattr(module, top, None) is not None, f"{kind}:{name}"
