"""Unit tests for ``tools/check_docs.py`` (link check, doctests, coverage)."""

from __future__ import annotations

import sys
import types

import pytest

from tools import check_docs


class TestGithubSlug:
    @pytest.mark.parametrize(
        ("heading", "slug"),
        [
            ("Plain Heading", "plain-heading"),
            ("Scenario API — `repro.experiments.scenario`", "scenario-api--reproexperimentsscenario"),
            ("With `code` span", "with-code-span"),
            ("Hyphen-ated words", "hyphen-ated-words"),
            ("Punctuation?! dropped.", "punctuation-dropped"),
        ],
    )
    def test_slugs(self, heading, slug):
        assert check_docs.github_slug(heading) == slug


class TestHeadingSlugs:
    def test_collects_all_levels(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Top\n\nprose\n\n## Sub Section\n\n###### Deep\n")
        assert check_docs.heading_slugs(doc) == ["top", "sub-section", "deep"]


class TestCheckLinks:
    @pytest.fixture()
    def docs_tree(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "OTHER.md").write_text("# Other Title\n")
        return tmp_path

    def test_valid_relative_link_passes(self, docs_tree):
        doc = docs_tree / "docs" / "INDEX.md"
        doc.write_text("[other](OTHER.md)\n")
        assert check_docs.check_links(doc) == []

    def test_broken_link_reported(self, docs_tree):
        doc = docs_tree / "docs" / "INDEX.md"
        doc.write_text("[gone](MISSING.md)\n")
        errors = check_docs.check_links(doc)
        assert len(errors) == 1
        assert "broken link -> MISSING.md" in errors[0]

    def test_valid_anchor_passes(self, docs_tree):
        doc = docs_tree / "docs" / "INDEX.md"
        doc.write_text("[other](OTHER.md#other-title)\n")
        assert check_docs.check_links(doc) == []

    def test_missing_anchor_reported(self, docs_tree):
        doc = docs_tree / "docs" / "INDEX.md"
        doc.write_text("[other](OTHER.md#no-such-heading)\n")
        errors = check_docs.check_links(doc)
        assert len(errors) == 1
        assert "missing anchor" in errors[0]

    def test_same_file_anchor(self, docs_tree):
        doc = docs_tree / "docs" / "INDEX.md"
        doc.write_text("# My Heading\n\n[jump](#my-heading)\n[bad](#nope)\n")
        errors = check_docs.check_links(doc)
        assert len(errors) == 1
        assert "#nope" in errors[0]

    def test_external_links_are_skipped(self, docs_tree):
        doc = docs_tree / "docs" / "INDEX.md"
        doc.write_text(
            "[ext](https://example.com/x) [mail](mailto:a@b.c) "
            "[plain](http://example.com)\n"
        )
        assert check_docs.check_links(doc) == []


class TestRunDoctests:
    def test_file_without_examples_is_skipped(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# No examples here\n")
        assert check_docs.run_doctests(doc) == (0, 0)

    def test_passing_examples_counted(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```text\n>>> 1 + 1\n2\n\n```\n")
        assert check_docs.run_doctests(doc) == (0, 1)

    def test_failing_example_reported(self, tmp_path, capsys):
        doc = tmp_path / "doc.md"
        doc.write_text("```text\n>>> 1 + 1\n3\n\n```\n")
        failed, attempted = check_docs.run_doctests(doc)
        capsys.readouterr()  # swallow doctest's failure report
        assert (failed, attempted) == (1, 1)


class TestApiCoverage:
    @pytest.fixture()
    def fake_module(self, monkeypatch):
        module = types.ModuleType("zz_fake_public")
        module.__all__ = ["documented_fn", "missing_fn"]
        monkeypatch.setitem(sys.modules, "zz_fake_public", module)
        monkeypatch.setattr(
            check_docs, "API_COVERAGE_MODULES", ("zz_fake_public",)
        )
        return module

    def test_missing_api_doc_reported(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
        errors = check_docs.check_api_coverage(tmp_path / "docs" / "API.md")
        assert errors == ["docs/API.md: file missing"]

    def test_undocumented_export_reported(self, tmp_path, monkeypatch, fake_module):
        monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
        api = tmp_path / "docs" / "API.md"
        api.parent.mkdir()
        api.write_text("`documented_fn` is covered here.\n")
        errors = check_docs.check_api_coverage(api)
        assert len(errors) == 1
        assert "zz_fake_public.missing_fn" in errors[0]

    def test_substring_mention_does_not_count(self, tmp_path, monkeypatch, fake_module):
        monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
        api = tmp_path / "docs" / "API.md"
        api.parent.mkdir()
        api.write_text("documented_fn and missing_fn_extended only.\n")
        errors = check_docs.check_api_coverage(api)
        assert len(errors) == 1
        assert "missing_fn" in errors[0]

    def test_module_without_all_reported(self, tmp_path, monkeypatch):
        module = types.ModuleType("zz_no_all")
        monkeypatch.setitem(sys.modules, "zz_no_all", module)
        monkeypatch.setattr(check_docs, "API_COVERAGE_MODULES", ("zz_no_all",))
        monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
        api = tmp_path / "docs" / "API.md"
        api.parent.mkdir()
        api.write_text("anything\n")
        errors = check_docs.check_api_coverage(api)
        assert errors == ["zz_no_all defines no __all__ to check"]


class TestMain:
    def test_real_repo_passes(self, capsys):
        assert check_docs.main() == 0
        assert "docs check passed" in capsys.readouterr().out

    def test_failure_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
        monkeypatch.setattr(check_docs, "API_COVERAGE_MODULES", ())
        (tmp_path / "README.md").write_text("[broken](MISSING.md)\n")
        assert check_docs.main() == 1
        assert "docs check failed" in capsys.readouterr().out
