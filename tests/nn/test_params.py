"""Unit tests for parameter containers and vector conversion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Parameter,
    ParameterSet,
    ParameterVector,
    flatten_parameters,
    unflatten_vector,
)


class TestParameter:
    def test_value_is_float64_and_contiguous(self):
        p = Parameter("w", np.arange(6, dtype=np.int32).reshape(2, 3))
        assert p.value.dtype == np.float64
        assert p.value.flags["C_CONTIGUOUS"]

    def test_shape_and_size(self):
        p = Parameter("w", np.zeros((3, 4)))
        assert p.shape == (3, 4)
        assert p.size == 12

    def test_ensure_grad_allocates_zeros(self):
        p = Parameter("w", np.ones((2, 2)))
        g = p.ensure_grad()
        assert g.shape == (2, 2)
        assert np.all(g == 0.0)

    def test_accumulate_grad_adds(self):
        p = Parameter("w", np.ones((2,)))
        p.accumulate_grad(np.array([1.0, 2.0]))
        p.accumulate_grad(np.array([0.5, 0.5]))
        np.testing.assert_allclose(p.grad, [1.5, 2.5])

    def test_zero_grad_in_place(self):
        p = Parameter("w", np.ones((2,)))
        p.accumulate_grad(np.array([1.0, 2.0]))
        buf = p.grad
        p.zero_grad()
        assert p.grad is buf
        assert np.all(p.grad == 0.0)

    def test_zero_grad_noop_when_unallocated(self):
        p = Parameter("w", np.ones((2,)))
        p.zero_grad()  # must not raise
        assert p.grad is None


class TestParameterSet:
    def _make(self):
        return ParameterSet(
            [
                Parameter("a", np.arange(6, dtype=float).reshape(2, 3)),
                Parameter("b", np.array([10.0, 20.0])),
            ]
        )

    def test_len_and_iteration_order(self):
        ps = self._make()
        assert len(ps) == 2
        assert [p.name for p in ps] == ["a", "b"]

    def test_getitem_by_name_and_index(self):
        ps = self._make()
        assert ps["a"].shape == (2, 3)
        assert ps[1].name == "b"

    def test_contains(self):
        ps = self._make()
        assert "a" in ps and "missing" not in ps

    def test_duplicate_name_rejected(self):
        ps = self._make()
        with pytest.raises(ValueError, match="duplicate"):
            ps.add(Parameter("a", np.zeros(1)))

    def test_total_size(self):
        assert self._make().total_size == 8

    def test_vector_roundtrip(self):
        ps = self._make()
        vec = ps.to_vector()
        assert vec.shape == (8,)
        ps2 = self._make()
        ps2.from_vector(vec * 2)
        np.testing.assert_allclose(ps2.to_vector(), vec * 2)

    def test_to_vector_with_out_buffer(self):
        ps = self._make()
        buf = np.empty(8)
        out = ps.to_vector(out=buf)
        assert out is buf
        np.testing.assert_allclose(out, ps.to_vector())

    def test_from_vector_wrong_size(self):
        ps = self._make()
        with pytest.raises(ValueError):
            ps.from_vector(np.zeros(7))

    def test_grad_vector_zeros_when_unset(self):
        ps = self._make()
        np.testing.assert_allclose(ps.grad_vector(), np.zeros(8))

    def test_grad_vector_reflects_accumulated_grads(self):
        ps = self._make()
        ps["b"].accumulate_grad(np.array([1.0, -1.0]))
        gv = ps.grad_vector()
        np.testing.assert_allclose(gv[6:], [1.0, -1.0])
        np.testing.assert_allclose(gv[:6], 0.0)

    def test_copy_is_deep(self):
        ps = self._make()
        cp = ps.copy()
        cp["a"].value[0, 0] = 999.0
        assert ps["a"].value[0, 0] == 0.0

    def test_state_dict_roundtrip(self):
        ps = self._make()
        state = ps.state_dict()
        ps2 = self._make()
        for v in state.values():
            v *= 3
        ps2.load_state_dict(state)
        np.testing.assert_allclose(ps2["a"].value, ps["a"].value * 3)

    def test_load_state_dict_missing_key(self):
        ps = self._make()
        with pytest.raises(KeyError, match="missing"):
            ps.load_state_dict({"a": np.zeros((2, 3))})

    def test_load_state_dict_unexpected_key(self):
        ps = self._make()
        state = ps.state_dict()
        state["zzz"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            ps.load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self):
        ps = self._make()
        state = ps.state_dict()
        state["b"] = np.zeros(3)
        with pytest.raises(ValueError, match="shape mismatch"):
            ps.load_state_dict(state)


class TestParameterVector:
    def test_flattens_input(self):
        pv = ParameterVector(np.ones((2, 3)))
        assert pv.data.shape == (6,)
        assert pv.dimension == 6

    def test_norm(self):
        pv = ParameterVector(np.array([3.0, 4.0]))
        assert pv.norm() == pytest.approx(5.0)

    def test_copy_independent(self):
        pv = ParameterVector(np.array([1.0, 2.0]), shapes=[(2,)])
        cp = pv.copy()
        cp.data[0] = 99.0
        assert pv.data[0] == 1.0

    def test_copy_into_checks_shape(self):
        pv = ParameterVector(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            pv.copy_into(np.zeros(3))
        buf = np.zeros(2)
        assert pv.copy_into(buf) is buf
        np.testing.assert_allclose(buf, [1.0, 2.0])


class TestFlattenUnflatten:
    def test_roundtrip(self):
        arrays = [np.arange(4.0).reshape(2, 2), np.array([5.0]), np.arange(6.0)]
        vec = flatten_parameters(arrays)
        blocks = unflatten_vector(vec, [a.shape for a in arrays])
        for a, b in zip(arrays, blocks):
            np.testing.assert_allclose(a, b)

    def test_flatten_with_out(self):
        arrays = [np.ones(3), np.zeros(2)]
        out = np.empty(5)
        res = flatten_parameters(arrays, out=out)
        assert res is out
        np.testing.assert_allclose(out, [1, 1, 1, 0, 0])

    def test_flatten_out_wrong_size(self):
        with pytest.raises(ValueError):
            flatten_parameters([np.ones(3)], out=np.empty(4))

    def test_unflatten_wrong_size(self):
        with pytest.raises(ValueError):
            unflatten_vector(np.zeros(5), [(2, 2)])

    def test_unflatten_returns_views_when_possible(self):
        vec = np.arange(4.0)
        blocks = unflatten_vector(vec, [(2, 2)])
        blocks[0][0, 0] = 42.0
        assert vec[0] == 42.0

    def test_scalar_shape_support(self):
        vec = flatten_parameters([np.array(3.0), np.ones(2)])
        blocks = unflatten_vector(vec, [(), (2,)])
        assert blocks[0].shape == ()
        assert float(blocks[0]) == 3.0
