"""Unit tests for neural-network layers, including numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU, col2im, im2col
from repro.nn.layers import collect_parameters


RNG = np.random.default_rng(0)


def numerical_gradient(forward, x, eps=1e-6):
    """Central-difference gradient of a scalar-valued ``forward(x)``."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = forward(x)
        flat[i] = orig - eps
        minus = forward(x)
        flat[i] = orig
        gflat[i] = (plus - minus) / (2 * eps)
    return grad


class TestDense:
    def test_forward_shape(self):
        layer = Dense("fc", 4, 3, np.random.default_rng(0))
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_forward_matches_matmul(self):
        layer = Dense("fc", 4, 3, np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((5, 4))
        expected = x @ layer.weight.value + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_no_bias_option(self):
        layer = Dense("fc", 4, 3, np.random.default_rng(0), bias=False)
        assert layer.bias is None
        assert len(layer.parameters) == 1

    def test_input_validation(self):
        layer = Dense("fc", 4, 3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer.forward(np.ones((5, 7)))
        with pytest.raises(ValueError):
            layer.forward(np.ones(4))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Dense("fc", 0, 3, np.random.default_rng(0))

    def test_backward_before_forward_raises(self):
        layer = Dense("fc", 4, 3, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((5, 3)))

    def test_backward_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(2)
        layer = Dense("fc", 3, 2, rng)
        x = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 2))

        def loss_of_x(xv):
            out = xv @ layer.weight.value + layer.bias.value
            return float(((out - target) ** 2).sum())

        out = layer.forward(x)
        grad_out = 2 * (out - target)
        grad_x = layer.backward(grad_out)
        num = numerical_gradient(loss_of_x, x.copy())
        np.testing.assert_allclose(grad_x, num, rtol=1e-5, atol=1e-7)

    def test_backward_weight_gradient_matches_numerical(self):
        rng = np.random.default_rng(3)
        layer = Dense("fc", 3, 2, rng)
        x = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 2))

        def loss_of_w(wv):
            out = x @ wv + layer.bias.value
            return float(((out - target) ** 2).sum())

        out = layer.forward(x)
        layer.backward(2 * (out - target))
        num = numerical_gradient(loss_of_w, layer.weight.value.copy())
        np.testing.assert_allclose(layer.weight.grad, num, rtol=1e-5, atol=1e-7)

    def test_gradients_accumulate_across_calls(self):
        rng = np.random.default_rng(4)
        layer = Dense("fc", 3, 2, rng)
        x = np.ones((2, 3))
        layer.forward(x)
        layer.backward(np.ones((2, 2)))
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(np.ones((2, 2)))
        np.testing.assert_allclose(layer.weight.grad, 2 * first)


class TestReLU:
    def test_forward_clamps_negative(self):
        layer = ReLU("r")
        out = layer.forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.0, 2.0]])

    def test_backward_masks_gradient(self):
        layer = ReLU("r")
        layer.forward(np.array([[-1.0, 3.0]]))
        grad = layer.backward(np.array([[5.0, 7.0]]))
        np.testing.assert_allclose(grad, [[0.0, 7.0]])

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU("r").backward(np.ones((1, 1)))

    def test_has_no_parameters(self):
        assert ReLU("r").parameters == []


class TestFlatten:
    def test_roundtrip_shape(self):
        layer = Flatten("f")
        x = np.arange(24.0).reshape(2, 3, 2, 2)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        assert back.shape == x.shape
        np.testing.assert_allclose(back, x)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Flatten("f").backward(np.ones((1, 4)))


class TestDropout:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout("d", 1.0, np.random.default_rng(0))

    def test_inactive_at_eval(self):
        layer = Dropout("d", 0.5, np.random.default_rng(0))
        x = np.ones((4, 4))
        np.testing.assert_allclose(layer.forward(x, training=False), x)

    def test_inverted_scaling_preserves_expectation(self):
        layer = Dropout("d", 0.5, np.random.default_rng(0))
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert abs(out.mean() - 1.0) < 0.05

    def test_backward_applies_same_mask(self):
        layer = Dropout("d", 0.5, np.random.default_rng(0))
        x = np.ones((10, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, out)

    def test_zero_rate_is_identity(self):
        layer = Dropout("d", 0.0, np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((3, 3))
        np.testing.assert_allclose(layer.forward(x, training=True), x)


class TestIm2Col:
    def test_known_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        cols, (oh, ow) = im2col(x, (2, 2), stride=2)
        assert (oh, ow) == (2, 2)
        assert cols.shape == (4, 4)
        np.testing.assert_allclose(cols[0], [0, 1, 4, 5])
        np.testing.assert_allclose(cols[3], [10, 11, 14, 15])

    def test_padding_increases_output(self):
        x = np.ones((1, 1, 3, 3))
        _, (oh, ow) = im2col(x, (3, 3), stride=1, padding=1)
        assert (oh, ow) == (3, 3)

    def test_kernel_too_large_raises(self):
        with pytest.raises(ValueError):
            im2col(np.ones((1, 1, 2, 2)), (5, 5))

    def test_col2im_inverts_for_non_overlapping(self):
        x = np.random.default_rng(0).standard_normal((2, 3, 4, 4))
        cols, _ = im2col(x, (2, 2), stride=2)
        rec = col2im(cols, x.shape, (2, 2), stride=2)
        np.testing.assert_allclose(rec, x)

    def test_col2im_accumulates_overlaps(self):
        x = np.ones((1, 1, 3, 3))
        cols, _ = im2col(x, (2, 2), stride=1)
        rec = col2im(cols, x.shape, (2, 2), stride=1)
        # The centre pixel is covered by all four 2x2 windows.
        assert rec[0, 0, 1, 1] == pytest.approx(4.0)
        assert rec[0, 0, 0, 0] == pytest.approx(1.0)


class TestConv2D:
    def test_forward_shape(self):
        layer = Conv2D("c", 3, 8, 3, np.random.default_rng(0), padding=1)
        out = layer.forward(np.zeros((2, 3, 8, 8)))
        assert out.shape == (2, 8, 8, 8)

    def test_forward_matches_direct_convolution(self):
        rng = np.random.default_rng(5)
        layer = Conv2D("c", 2, 3, 3, rng, padding=0)
        x = rng.standard_normal((1, 2, 5, 5))
        out = layer.forward(x)
        # Direct computation at one output location.
        patch = x[0, :, 1:4, 2:5]
        expected = (layer.weight.value[1] * patch).sum() + layer.bias.value[1]
        assert out[0, 1, 1, 2] == pytest.approx(expected)

    def test_input_channel_validation(self):
        layer = Conv2D("c", 3, 4, 3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 2, 8, 8)))

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Conv2D("c", 1, 1, 0, np.random.default_rng(0))

    def test_backward_before_forward_raises(self):
        layer = Conv2D("c", 1, 1, 3, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1, 6, 6)))

    def test_backward_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(6)
        layer = Conv2D("c", 1, 2, 3, rng, padding=1)
        x = rng.standard_normal((1, 1, 4, 4))

        def loss_of_x(xv):
            out = layer.forward(xv, training=False)
            return float((out**2).sum())

        out = layer.forward(x)
        grad_x = layer.backward(2 * out)
        num = numerical_gradient(loss_of_x, x.copy())
        np.testing.assert_allclose(grad_x, num, rtol=1e-4, atol=1e-6)

    def test_backward_weight_gradient_matches_numerical(self):
        rng = np.random.default_rng(7)
        layer = Conv2D("c", 1, 1, 3, rng, padding=0)
        x = rng.standard_normal((2, 1, 4, 4))

        def loss_of_w(wv):
            old = layer.weight.value.copy()
            layer.weight.value[...] = wv
            out = layer.forward(x, training=False)
            layer.weight.value[...] = old
            return float((out**2).sum())

        out = layer.forward(x)
        layer.backward(2 * out)
        num = numerical_gradient(loss_of_w, layer.weight.value.copy())
        np.testing.assert_allclose(layer.weight.grad, num, rtol=1e-4, atol=1e-6)


class TestMaxPool2D:
    def test_forward_known_values(self):
        layer = MaxPool2D("p", 2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_non_divisible_raises(self):
        layer = MaxPool2D("p", 2)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 1, 5, 5)))

    @pytest.mark.parametrize(
        "pool_size, h, w",
        [(2, 5, 4), (2, 4, 5), (2, 7, 7), (3, 4, 6), (3, 6, 4), (4, 6, 6)],
    )
    def test_shape_validation_names_offending_shape(self, pool_size, h, w):
        """The divisibility constraint (see the class docstring) fails fast
        with an error naming the spatial size and pool size, instead of an
        opaque reshape error mid-training."""
        import re

        layer = MaxPool2D("pool", pool_size)
        with pytest.raises(
            ValueError, match=re.escape(str((h, w))) + f".*pool size {pool_size}"
        ):
            layer.forward(np.zeros((2, 3, h, w)))

    @pytest.mark.parametrize("pool_size, h, w", [(2, 4, 4), (2, 6, 8), (3, 6, 9)])
    def test_shape_validation_accepts_divisible(self, pool_size, h, w):
        out = MaxPool2D("pool", pool_size).forward(np.zeros((2, 3, h, w)))
        assert out.shape == (2, 3, h // pool_size, w // pool_size)

    def test_batched_kernel_validates_shape_identically(self):
        from repro.nn.batched import _BatchedMaxPool2D

        kernel = _BatchedMaxPool2D(MaxPool2D("pool", 2), 0)
        with pytest.raises(ValueError, match=r"\(5, 4\).*pool size 2"):
            kernel.forward(np.zeros((1, 2, 3, 5, 4)))

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            MaxPool2D("p", 0)

    def test_backward_routes_gradient_to_max(self):
        layer = MaxPool2D("p", 2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        layer.forward(x)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        assert grad[0, 0, 1, 1] == 1.0  # position of 5
        assert grad[0, 0, 3, 3] == 1.0  # position of 15
        assert grad.sum() == pytest.approx(4.0)

    def test_backward_splits_gradient_on_ties(self):
        layer = MaxPool2D("p", 2)
        x = np.ones((1, 1, 2, 2))
        layer.forward(x)
        grad = layer.backward(np.ones((1, 1, 1, 1)))
        # All four entries tie; the unit gradient must be split, not copied.
        assert grad.sum() == pytest.approx(1.0)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            MaxPool2D("p", 2).backward(np.zeros((1, 1, 2, 2)))


class TestCollectParameters:
    def test_collects_in_layer_order(self):
        rng = np.random.default_rng(0)
        layers = [Dense("fc1", 2, 3, rng), ReLU("r"), Dense("fc2", 3, 1, rng)]
        params = collect_parameters(layers)
        assert params.names() == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]
