"""Unit tests for weight initializers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import initializers as init


RNG = lambda: np.random.default_rng(0)  # noqa: E731


class TestBasicInitializers:
    def test_zeros(self):
        out = init.zeros((3, 4))
        assert out.shape == (3, 4)
        assert np.all(out == 0.0)

    def test_uniform_range(self):
        out = init.uniform((1000,), RNG(), low=-0.1, high=0.1)
        assert out.min() >= -0.1 and out.max() < 0.1

    def test_normal_std(self):
        out = init.normal((20000,), RNG(), std=0.5)
        assert abs(out.std() - 0.5) < 0.02
        assert abs(out.mean()) < 0.02

    def test_determinism_with_same_seed(self):
        a = init.xavier_uniform((5, 5), np.random.default_rng(42))
        b = init.xavier_uniform((5, 5), np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = init.he_normal((5, 5), np.random.default_rng(1))
        b = init.he_normal((5, 5), np.random.default_rng(2))
        assert not np.allclose(a, b)


class TestFanComputation:
    def test_conv_fan(self):
        fan_in, fan_out = init.conv_fan((8, 3, 5, 5))
        assert fan_in == 3 * 25
        assert fan_out == 8 * 25

    def test_conv_fan_rejects_non_4d(self):
        with pytest.raises(ValueError):
            init.conv_fan((3, 3))


class TestScaledInitializers:
    @pytest.mark.parametrize(
        "fn", [init.xavier_uniform, init.xavier_normal, init.he_uniform, init.he_normal]
    )
    def test_shapes(self, fn):
        assert fn((6, 4), RNG()).shape == (6, 4)
        assert fn((8, 3, 3, 3), RNG()).shape == (8, 3, 3, 3)

    def test_xavier_uniform_bound(self):
        fan_in, fan_out = 100, 50
        out = init.xavier_uniform((fan_in, fan_out), RNG())
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        assert np.all(np.abs(out) <= limit + 1e-12)

    def test_he_normal_variance_scales_with_fan_in(self):
        small_fan = init.he_normal((10, 4000), RNG())
        large_fan = init.he_normal((1000, 40), RNG())
        # Var = 2/fan_in, so the small-fan-in init must have larger spread.
        assert small_fan.std() > large_fan.std() * 3

    def test_xavier_normal_std(self):
        fan_in, fan_out = 200, 200
        out = init.xavier_normal((fan_in, fan_out), RNG())
        expected = np.sqrt(2.0 / (fan_in + fan_out))
        assert abs(out.std() - expected) < 0.1 * expected

    def test_generic_shape_fallback(self):
        # 1-D shapes should not crash (fan_in = fan_out = size).
        out = init.xavier_uniform((50,), RNG())
        assert out.shape == (50,)
