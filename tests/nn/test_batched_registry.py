"""Kernel-registry tests for the batched execution engine.

Every registered layer kernel is exercised standalone: a minimal model
containing the layer is trained one local update on both the scalar path
and the batched engine, and the resulting parameter vectors must match
bit for bit (uniform per-worker batch sizes, float64).  Unknown layers
must keep the graceful ``try_build`` fallback, and third-party kernels
registered through :func:`repro.nn.register_batched_kernel` must compose
with the built-ins.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    BatchedWorkerEngine,
    SGD,
    SequentialModel,
    batched_layer_supported,
    register_batched_kernel,
)
from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
)


def scalar_reference(model, worker_id, x, y, base, *, seed, round_index, lr, steps, batch):
    """The exact per-worker update of BaseTrainer.local_update."""
    model.set_vector(base)
    opt = SGD(model.parameters, lr=lr)
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, worker_id, round_index, 0x10CA1])
    )
    n = x.shape[0]
    b = min(batch, n)
    for _ in range(steps):
        idx = rng.choice(n, size=b, replace=False)
        opt.zero_grad()
        model.loss_and_grad(x[idx], y[idx])
        opt.step()
    return model.get_vector()


# ----------------------------------------------------------------------
# One minimal model per supported layer type.  Each entry maps the layer
# name to (model factory, per-sample feature shape, number of classes).
# Factories are deterministic so two builds produce identical models —
# required for Dropout, whose kernel consumes the layer's own generator.
# ----------------------------------------------------------------------
def _dense_model():
    return SequentialModel([Dense("fc", 12, 5, np.random.default_rng(0))])


def _relu_model():
    rng = np.random.default_rng(1)
    return SequentialModel(
        [Dense("fc1", 12, 9, rng), ReLU("relu"), Dense("fc2", 9, 5, rng)]
    )


def _flatten_model():
    return SequentialModel(
        [Flatten("flatten"), Dense("fc", 2 * 4 * 4, 5, np.random.default_rng(2))]
    )


def _conv2d_model():
    rng = np.random.default_rng(3)
    return SequentialModel(
        [
            Conv2D("conv", 2, 4, 3, rng, padding=1),
            Flatten("flatten"),
            Dense("fc", 4 * 4 * 4, 5, rng),
        ]
    )


def _conv2d_unpadded_strided_model():
    # Two stacked convolutions so the second one (stride 2, no padding)
    # exercises the generic col2im input-gradient path — a model's first
    # parametric layer skips input gradients entirely.
    rng = np.random.default_rng(4)
    return SequentialModel(
        [
            Conv2D("conv1", 2, 3, 3, rng, padding=1),
            ReLU("relu"),
            Conv2D("conv2", 3, 3, 2, rng, stride=2, padding=0),
            Flatten("flatten"),
            Dense("fc", 3 * 2 * 2, 5, rng),
        ]
    )


def _maxpool_model():
    return SequentialModel(
        [
            MaxPool2D("pool", 2),
            Flatten("flatten"),
            Dense("fc", 2 * 2 * 2, 5, np.random.default_rng(5)),
        ]
    )


def _dropout_model():
    rng = np.random.default_rng(6)
    drop_rng = np.random.default_rng(0xD0)
    return SequentialModel(
        [
            Flatten("flatten"),
            Dense("fc1", 2 * 4 * 4, 10, rng),
            ReLU("relu"),
            Dropout("drop", 0.4, drop_rng),
            Dense("fc2", 10, 5, rng),
        ]
    )


def _two_dropout_model():
    # Two Dropout layers with their own generators: each layer's stream is
    # replayed independently, which matches the scalar order exactly.
    rng = np.random.default_rng(7)
    return SequentialModel(
        [
            Flatten("flatten"),
            Dense("fc1", 2 * 4 * 4, 12, rng),
            Dropout("drop1", 0.25, np.random.default_rng(0xD1)),
            ReLU("relu"),
            Dense("fc2", 12, 8, rng),
            Dropout("drop2", 0.5, np.random.default_rng(0xD2)),
            Dense("fc3", 8, 5, rng),
        ]
    )


LAYER_MODELS = {
    "dense": (_dense_model, (12,), 5),
    "dropout_two_layers": (_two_dropout_model, (2, 4, 4), 5),
    "relu": (_relu_model, (12,), 5),
    "flatten": (_flatten_model, (2, 4, 4), 5),
    "conv2d": (_conv2d_model, (2, 4, 4), 5),
    "conv2d_unpadded_strided": (_conv2d_unpadded_strided_model, (2, 4, 4), 5),
    "maxpool2d": (_maxpool_model, (2, 4, 4), 5),
    "dropout": (_dropout_model, (2, 4, 4), 5),
}


@pytest.mark.parametrize("name", sorted(LAYER_MODELS))
def test_standalone_layer_forward_backward_step_bit_exact(name):
    """Each supported layer's batched forward/backward/SGD-step sequence
    reproduces the scalar path bit for bit (uniform batches, float64)."""
    factory, feat, classes = LAYER_MODELS[name]
    rng = np.random.default_rng(42)
    ids, data = [], []
    for k in range(4):
        data.append(
            (rng.standard_normal((18,) + feat), rng.integers(0, classes, 18))
        )
        ids.append(k)
    ref_model = factory()
    bat_model = factory()
    base = ref_model.get_vector()
    np.testing.assert_array_equal(base, bat_model.get_vector())
    ref = np.stack(
        [
            scalar_reference(
                ref_model, w, x, y, base,
                seed=9, round_index=2, lr=0.15, steps=3, batch=8,
            )
            for w, (x, y) in zip(ids, data)
        ]
    )
    engine = BatchedWorkerEngine.try_build(bat_model)
    assert engine is not None, f"no batched kernel for {name}"
    out = np.empty_like(ref)
    engine.run_group(
        ids, data, base, 2,
        learning_rate=0.15, local_steps=3, batch_size=8, seed=9, out=out,
    )
    np.testing.assert_array_equal(out, ref)


# ----------------------------------------------------------------------
# Fallback and registration behaviour
# ----------------------------------------------------------------------
class _UnknownActivation(Layer):
    """A layer type the registry has never seen."""

    def forward(self, x, training=True):
        return x

    def backward(self, grad_out):
        return grad_out


class TestFallback:
    def test_unknown_layer_not_supported(self):
        assert not batched_layer_supported(_UnknownActivation("mystery"))

    def test_try_build_returns_none_for_unknown_layer(self):
        model = SequentialModel(
            [_UnknownActivation("mystery"), Dense("fc", 8, 3, np.random.default_rng(0))]
        )
        assert BatchedWorkerEngine.try_build(model) is None

    def test_direct_construction_raises_for_unknown_layer(self):
        model = SequentialModel(
            [_UnknownActivation("mystery"), Dense("fc", 8, 3, np.random.default_rng(0))]
        )
        with pytest.raises(ValueError, match="no batched kernel"):
            BatchedWorkerEngine(model)

    def test_subclass_inherits_kernel_via_mro(self):
        class _StillReLU(ReLU):
            pass

        assert batched_layer_supported(_StillReLU("relu"))

    def test_shared_dropout_rng_falls_back_to_scalar(self):
        """Two Dropout layers sharing one generator cannot be replayed
        layer-by-layer in the scalar stream order, so try_build refuses."""
        rng = np.random.default_rng(0)
        shared = np.random.default_rng(1)
        model = SequentialModel(
            [
                Dense("fc1", 8, 8, rng),
                Dropout("d1", 0.3, shared),
                Dense("fc2", 8, 4, rng),
                Dropout("d2", 0.3, shared),
                Dense("fc3", 4, 3, rng),
            ]
        )
        assert BatchedWorkerEngine.try_build(model) is None
        with pytest.raises(ValueError, match="share one random generator"):
            BatchedWorkerEngine(model)

    def test_distinct_dropout_rngs_supported(self):
        rng = np.random.default_rng(0)
        model = SequentialModel(
            [
                Dense("fc1", 8, 8, rng),
                Dropout("d1", 0.3, np.random.default_rng(1)),
                Dense("fc2", 8, 4, rng),
                Dropout("d2", 0.3, np.random.default_rng(2)),
                Dense("fc3", 4, 3, rng),
            ]
        )
        assert BatchedWorkerEngine.try_build(model) is not None


class TestRegistration:
    def test_registered_kernel_composes_with_builtins(self):
        class _Identity(Layer):
            def forward(self, x, training=True):
                return x

            def backward(self, grad_out):
                return grad_out

        @register_batched_kernel(_Identity)
        class _BatchedIdentity:
            param_size = 0

            def __init__(self, layer, offset):
                pass

            def forward(self, x):
                return x

            def backward(self, grad_out):
                return grad_out

        from repro.nn.batched import _KERNEL_REGISTRY

        try:
            assert batched_layer_supported(_Identity("id"))

            def factory():
                return SequentialModel(
                    [_Identity("id"), Dense("fc", 6, 4, np.random.default_rng(1))]
                )

            model = factory()
            engine = BatchedWorkerEngine.try_build(model)
            assert engine is not None
            rng = np.random.default_rng(3)
            ids = [0, 1]
            data = [
                (rng.standard_normal((10, 6)), rng.integers(0, 4, 10))
                for _ in ids
            ]
            base = model.get_vector()
            ref = np.stack(
                [
                    scalar_reference(
                        model, w, x, y, base,
                        seed=1, round_index=1, lr=0.1, steps=2, batch=4,
                    )
                    for w, (x, y) in zip(ids, data)
                ]
            )
            out = np.empty_like(ref)
            engine.run_group(
                ids, data, base, 1,
                learning_rate=0.1, local_steps=2, batch_size=4, seed=1, out=out,
            )
            np.testing.assert_array_equal(out, ref)
        finally:
            _KERNEL_REGISTRY.pop(_Identity, None)
