"""Unit tests for softmax / cross-entropy losses and accuracy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    accuracy,
    cross_entropy_from_probs,
    log_softmax,
    softmax,
    softmax_cross_entropy,
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.random.default_rng(0).standard_normal((6, 4))
        probs = softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_invariant_to_constant_shift(self):
        logits = np.random.default_rng(1).standard_normal((3, 5))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_numerically_stable_for_large_logits(self):
        logits = np.array([[1e4, 0.0]])
        probs = softmax(logits)
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_log_softmax_matches_log_of_softmax(self):
        logits = np.random.default_rng(2).standard_normal((4, 3))
        np.testing.assert_allclose(log_softmax(logits), np.log(softmax(logits)), atol=1e-12)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_near_zero_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        labels = np.array([0, 1])
        loss, _ = softmax_cross_entropy(logits, labels)
        assert loss < 1e-6

    def test_uniform_prediction_loss_is_log_k(self):
        k = 5
        logits = np.zeros((10, k))
        labels = np.zeros(10, dtype=int)
        loss, _ = softmax_cross_entropy(logits, labels)
        assert loss == pytest.approx(np.log(k))

    def test_gradient_rows_sum_to_zero(self):
        rng = np.random.default_rng(3)
        logits = rng.standard_normal((7, 4))
        labels = rng.integers(0, 4, size=7)
        _, grad = softmax_cross_entropy(logits, labels)
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(4)
        logits = rng.standard_normal((3, 4))
        labels = rng.integers(0, 4, size=3)
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        num = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                lp = logits.copy(); lp[i, j] += eps
                lm = logits.copy(); lm[i, j] -= eps
                num[i, j] = (
                    softmax_cross_entropy(lp, labels)[0]
                    - softmax_cross_entropy(lm, labels)[0]
                ) / (2 * eps)
        np.testing.assert_allclose(grad, num, rtol=1e-5, atol=1e-8)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros(4), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((4, 3)), np.zeros(5, dtype=int))

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0, 3]))

    def test_loss_decreases_along_negative_gradient(self):
        rng = np.random.default_rng(5)
        logits = rng.standard_normal((6, 5))
        labels = rng.integers(0, 5, size=6)
        loss0, grad = softmax_cross_entropy(logits, labels)
        loss1, _ = softmax_cross_entropy(logits - 0.5 * grad, labels)
        assert loss1 < loss0


class TestCrossEntropyFromProbs:
    def test_matches_softmax_version(self):
        rng = np.random.default_rng(6)
        logits = rng.standard_normal((5, 3))
        labels = rng.integers(0, 3, size=5)
        loss_logits, _ = softmax_cross_entropy(logits, labels)
        loss_probs = cross_entropy_from_probs(softmax(logits), labels)
        assert loss_probs == pytest.approx(loss_logits)

    def test_clips_zero_probabilities(self):
        probs = np.array([[1.0, 0.0]])
        loss = cross_entropy_from_probs(probs, np.array([1]))
        assert np.isfinite(loss)


class TestAccuracy:
    def test_perfect_and_zero(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 0])) == 0.0

    def test_partial(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 0.0], [0.0, 5.0]])
        assert accuracy(logits, np.array([0, 1, 1, 1])) == pytest.approx(0.75)

    def test_empty_input(self):
        assert accuracy(np.zeros((0, 3)), np.zeros(0, dtype=int)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((3, 2)), np.zeros(4, dtype=int))
