"""Unit tests for the SGD optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, Parameter, ParameterSet


def make_params(values=(1.0, 2.0)):
    return ParameterSet([Parameter("w", np.array(values))])


class TestValidation:
    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            SGD(make_params(), lr=0.0)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD(make_params(), lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD(make_params(), lr=0.1, momentum=-0.1)

    def test_rejects_negative_weight_decay(self):
        with pytest.raises(ValueError):
            SGD(make_params(), lr=0.1, weight_decay=-1.0)

    def test_set_lr_validation(self):
        opt = SGD(make_params(), lr=0.1)
        with pytest.raises(ValueError):
            opt.set_lr(-1.0)
        opt.set_lr(0.5)
        assert opt.lr == 0.5


class TestPlainSGD:
    def test_step_is_paper_update_rule(self):
        params = make_params()
        params["w"].accumulate_grad(np.array([0.5, -0.5]))
        SGD(params, lr=0.1).step()
        np.testing.assert_allclose(params["w"].value, [0.95, 2.05])

    def test_skips_params_without_grad(self):
        params = make_params()
        SGD(params, lr=0.1).step()
        np.testing.assert_allclose(params["w"].value, [1.0, 2.0])

    def test_zero_grad_clears(self):
        params = make_params()
        params["w"].accumulate_grad(np.array([1.0, 1.0]))
        opt = SGD(params, lr=0.1)
        opt.zero_grad()
        np.testing.assert_allclose(params["w"].grad, 0.0)

    def test_converges_on_quadratic(self):
        # Minimize f(w) = ||w - target||^2 with exact gradients.
        target = np.array([3.0, -2.0])
        params = ParameterSet([Parameter("w", np.zeros(2))])
        opt = SGD(params, lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            params["w"].accumulate_grad(2 * (params["w"].value - target))
            opt.step()
        np.testing.assert_allclose(params["w"].value, target, atol=1e-6)


class TestMomentumAndWeightDecay:
    def test_momentum_accumulates_velocity(self):
        params = make_params((0.0,))
        opt = SGD(params, lr=1.0, momentum=0.5)
        for _ in range(2):
            opt.zero_grad()
            params["w"].accumulate_grad(np.array([1.0]))
            opt.step()
        # First step: -1.  Second step: velocity = 0.5*1 + 1 = 1.5 -> total -2.5.
        np.testing.assert_allclose(params["w"].value, [-2.5])

    def test_momentum_faster_than_plain_on_quadratic(self):
        def run(momentum):
            params = ParameterSet([Parameter("w", np.array([10.0]))])
            opt = SGD(params, lr=0.01, momentum=momentum)
            for _ in range(100):
                opt.zero_grad()
                params["w"].accumulate_grad(2 * params["w"].value)
                opt.step()
            return abs(float(params["w"].value[0]))

        assert run(0.8) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        params = make_params((1.0,))
        opt = SGD(params, lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        params["w"].accumulate_grad(np.array([0.0]))
        opt.step()
        # update = lr * (grad + wd * w) = 0.1 * 0.5 = 0.05
        np.testing.assert_allclose(params["w"].value, [0.95])

    def test_weight_decay_does_not_modify_grad_buffer(self):
        params = make_params((1.0,))
        opt = SGD(params, lr=0.1, weight_decay=0.5)
        params["w"].accumulate_grad(np.array([1.0]))
        opt.step()
        np.testing.assert_allclose(params["w"].grad, [1.0])
