"""Numerical-equivalence tests for the vectorized group-training engine.

The contract (see ISSUE/docs/PERFORMANCE.md): batched group training matches
the sequential scalar path to <= 1e-9 per parameter in float64, including
ragged per-worker batch sizes, workers without data, engine reuse across
rounds and alternating group sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    BatchedWorkerEngine,
    LogisticRegressionMLP,
    MiniVGG,
    MnistCNN,
    SGD,
    batched_layer_supported,
    parameter_dtype,
)
from repro.nn.layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU

TOL = 1e-9


def scalar_reference(model, worker_id, x, y, base, *, seed, round_index, lr, steps, batch):
    """The exact per-worker update of BaseTrainer.local_update."""
    if x.shape[0] == 0:
        return base.copy()
    model.set_vector(base)
    opt = SGD(model.parameters, lr=lr)
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, worker_id, round_index, 0x10CA1])
    )
    n = x.shape[0]
    b = min(batch, n)
    for _ in range(steps):
        idx = rng.choice(n, size=b, replace=False)
        opt.zero_grad()
        model.loss_and_grad(x[idx], y[idx])
        opt.step()
    return model.get_vector()


@pytest.fixture()
def mlp():
    return LogisticRegressionMLP(input_dim=16, hidden=12, num_classes=5, seed=0)


def make_group(rng, num_workers, features=16, classes=5, min_n=5, max_n=40):
    ids, data = [], []
    for k in range(num_workers):
        n = int(rng.integers(min_n, max_n))
        data.append(
            (rng.standard_normal((n, features)), rng.integers(0, classes, n))
        )
        ids.append(k)
    return ids, data


def make_image_group(
    rng, num_workers, shape=(1, 8, 8), classes=10, min_n=5, max_n=30, uniform_n=None
):
    ids, data = [], []
    for k in range(num_workers):
        n = uniform_n if uniform_n is not None else int(rng.integers(min_n, max_n))
        data.append(
            (rng.standard_normal((n,) + shape), rng.integers(0, classes, n))
        )
        ids.append(k)
    return ids, data


def run_both_paths(model, ids, data, *, seed=11, round_index=3, lr=0.2, steps=3, batch=16):
    """Scalar-reference stack and batched run_group output for one group."""
    base = model.get_vector()
    ref = np.stack(
        [
            scalar_reference(
                model, w, x, y, base,
                seed=seed, round_index=round_index, lr=lr, steps=steps, batch=batch,
            )
            for w, (x, y) in zip(ids, data)
        ]
    )
    engine = BatchedWorkerEngine.try_build(model)
    assert engine is not None
    out = np.empty_like(ref)
    engine.run_group(
        ids, data, base, round_index,
        learning_rate=lr, local_steps=steps, batch_size=batch, seed=seed, out=out,
    )
    return ref, out


class TestEngineConstruction:
    def test_supported_for_mlp(self, mlp):
        assert BatchedWorkerEngine.try_build(mlp) is not None

    def test_supported_for_cnn(self):
        assert BatchedWorkerEngine.try_build(MnistCNN(image_size=8, scale=0.1)) is not None

    def test_supported_for_mini_vgg(self):
        model = MiniVGG(image_size=8, blocks=2, base_channels=4, hidden=16, num_classes=5)
        assert BatchedWorkerEngine.try_build(model) is not None

    def test_layer_support_predicate(self):
        rng = np.random.default_rng(0)
        assert batched_layer_supported(Dense("d", 4, 4, rng))
        assert batched_layer_supported(ReLU("r"))
        assert batched_layer_supported(Flatten("f"))
        assert batched_layer_supported(Conv2D("c", 1, 2, 3, rng))
        assert batched_layer_supported(MaxPool2D("p", 2))
        assert batched_layer_supported(Dropout("do", 0.5, rng))


class TestEquivalence:
    def test_matches_scalar_path_ragged_batches(self, mlp):
        rng = np.random.default_rng(0)
        ids, data = make_group(rng, 6)
        base = mlp.get_vector()
        ref = np.stack(
            [
                scalar_reference(
                    mlp, w, x, y, base, seed=11, round_index=3, lr=0.2, steps=4, batch=16
                )
                for w, (x, y) in zip(ids, data)
            ]
        )
        engine = BatchedWorkerEngine.try_build(mlp)
        out = np.empty_like(ref)
        engine.run_group(
            ids, data, base, 3,
            learning_rate=0.2, local_steps=4, batch_size=16, seed=11, out=out,
        )
        assert np.abs(out - ref).max() <= TOL

    def test_worker_without_data_returns_base(self, mlp):
        rng = np.random.default_rng(1)
        ids, data = make_group(rng, 3)
        ids.append(42)
        data.append((np.zeros((0, 16)), np.zeros(0, dtype=np.int64)))
        base = mlp.get_vector()
        engine = BatchedWorkerEngine.try_build(mlp)
        out = np.empty((4, mlp.dimension))
        engine.run_group(
            ids, data, base, 1,
            learning_rate=0.1, local_steps=2, batch_size=8, seed=0, out=out,
        )
        np.testing.assert_array_equal(out[3], base)
        assert not np.array_equal(out[0], base)

    def test_deterministic_and_reusable_across_group_sizes(self, mlp):
        rng = np.random.default_rng(2)
        ids, data = make_group(rng, 5)
        base = mlp.get_vector()
        engine = BatchedWorkerEngine.try_build(mlp)
        kw = dict(learning_rate=0.2, local_steps=3, batch_size=8, seed=7)
        out1 = np.empty((5, mlp.dimension))
        engine.run_group(ids, data, base, 2, out=out1, **kw)
        # Interleave a different group size, then repeat the original call:
        # cached buffers must not leak state between signatures.
        out_small = np.empty((2, mlp.dimension))
        engine.run_group(ids[:2], data[:2], base, 5, out=out_small, **kw)
        out2 = np.empty_like(out1)
        engine.run_group(ids, data, base, 2, out=out2, **kw)
        np.testing.assert_array_equal(out1, out2)
        out_small2 = np.empty_like(out_small)
        engine.run_group(ids[:2], data[:2], base, 5, out=out_small2, **kw)
        np.testing.assert_array_equal(out_small, out_small2)

    def test_multiple_rounds_match_scalar(self, mlp):
        """Iterated rounds (engine state reuse) stay within tolerance."""
        rng = np.random.default_rng(3)
        ids, data = make_group(rng, 4)
        engine = BatchedWorkerEngine.try_build(mlp)
        base = mlp.get_vector()
        out = np.empty((4, mlp.dimension))
        for round_index in (1, 2, 3):
            ref = np.stack(
                [
                    scalar_reference(
                        mlp, w, x, y, base,
                        seed=5, round_index=round_index, lr=0.1, steps=2, batch=8,
                    )
                    for w, (x, y) in zip(ids, data)
                ]
            )
            engine.run_group(
                ids, data, base, round_index,
                learning_rate=0.1, local_steps=2, batch_size=8, seed=5, out=out,
            )
            assert np.abs(out - ref).max() <= TOL
            # Advance the shared base like an aggregation round would.
            base = ref.mean(axis=0)

    def test_out_shape_validated(self, mlp):
        rng = np.random.default_rng(4)
        ids, data = make_group(rng, 3)
        engine = BatchedWorkerEngine.try_build(mlp)
        with pytest.raises(ValueError):
            engine.run_group(
                ids, data, mlp.get_vector(), 1,
                learning_rate=0.1, local_steps=1, batch_size=8, seed=0,
                out=np.empty((2, mlp.dimension)),
            )


class TestConvEquivalence:
    """Batched Conv2D/MaxPool2D kernels against the scalar CNN path."""

    def test_cnn_uniform_batches_bit_exact(self):
        model = MnistCNN(image_size=8, scale=0.15, seed=0)
        rng = np.random.default_rng(0)
        ids, data = make_image_group(rng, 5, uniform_n=24)
        ref, out = run_both_paths(model, ids, data)
        np.testing.assert_array_equal(out, ref)

    def test_cnn_ragged_batches_within_tol(self):
        model = MnistCNN(image_size=8, scale=0.15, seed=0)
        rng = np.random.default_rng(1)
        ids, data = make_image_group(rng, 6)
        ref, out = run_both_paths(model, ids, data)
        assert np.abs(out - ref).max() <= TOL

    def test_mini_vgg_uniform_batches_bit_exact(self):
        model = MiniVGG(
            image_size=8, blocks=2, base_channels=4, hidden=16, num_classes=7, seed=1
        )
        rng = np.random.default_rng(2)
        ids, data = make_image_group(rng, 4, shape=(3, 8, 8), classes=7, uniform_n=20)
        ref, out = run_both_paths(model, ids, data)
        np.testing.assert_array_equal(out, ref)

    def test_large_group_tiled_matches_scalar(self):
        """Groups above the conv tile size split internally; results are
        identical because each member's per-slice operations do not depend
        on how the group is partitioned."""
        model = MnistCNN(image_size=8, scale=0.1, seed=3)
        rng = np.random.default_rng(3)
        ids, data = make_image_group(rng, 30, uniform_n=16)
        # One worker without data inside a tile keeps the base vector.
        data[17] = (np.zeros((0, 1, 8, 8)), np.zeros(0, dtype=np.int64))
        base = model.get_vector()
        ref, out = run_both_paths(model, ids, data, steps=2)
        np.testing.assert_array_equal(out, ref)
        np.testing.assert_array_equal(out[17], base)
        assert not np.array_equal(out[0], base)

    def test_cnn_multiple_rounds_match_scalar(self):
        model = MnistCNN(image_size=8, scale=0.1, seed=4)
        rng = np.random.default_rng(4)
        ids, data = make_image_group(rng, 3, uniform_n=12)
        engine = BatchedWorkerEngine.try_build(model)
        base = model.get_vector()
        out = np.empty((3, model.dimension))
        for round_index in (1, 2, 3):
            ref = np.stack(
                [
                    scalar_reference(
                        model, w, x, y, base,
                        seed=5, round_index=round_index, lr=0.1, steps=2, batch=8,
                    )
                    for w, (x, y) in zip(ids, data)
                ]
            )
            engine.run_group(
                ids, data, base, round_index,
                learning_rate=0.1, local_steps=2, batch_size=8, seed=5, out=out,
            )
            np.testing.assert_array_equal(out, ref)
            base = ref.mean(axis=0)


class TestFloat32Mode:
    def test_engine_runs_in_float32(self):
        with parameter_dtype("float32"):
            model = LogisticRegressionMLP(input_dim=16, hidden=8, num_classes=4, seed=0)
        assert model.get_vector().dtype == np.float32
        engine = BatchedWorkerEngine.try_build(model)
        assert engine is not None and engine.dtype == np.float32
        rng = np.random.default_rng(5)
        ids, data = make_group(rng, 3, classes=4)
        out = np.empty((3, model.dimension), dtype=np.float32)
        engine.run_group(
            ids, data, model.get_vector(), 1,
            learning_rate=0.1, local_steps=2, batch_size=8, seed=0, out=out,
        )
        assert np.isfinite(out).all()

    def test_float32_tracks_float64_loosely(self):
        """float32 mode follows the float64 trajectory to ~1e-4 after a few steps."""
        rng = np.random.default_rng(6)
        ids, data = make_group(rng, 3)
        results = {}
        for dtype in ("float64", "float32"):
            with parameter_dtype(dtype):
                model = LogisticRegressionMLP(input_dim=16, hidden=8, num_classes=5, seed=0)
            engine = BatchedWorkerEngine.try_build(model)
            out = np.empty((3, model.dimension), dtype=model.get_vector().dtype)
            engine.run_group(
                ids, data, model.get_vector(), 1,
                learning_rate=0.1, local_steps=3, batch_size=8, seed=1, out=out,
            )
            results[dtype] = out.astype(np.float64)
        assert np.abs(results["float64"] - results["float32"]).max() < 1e-3
