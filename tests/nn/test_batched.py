"""Numerical-equivalence tests for the vectorized group-training engine.

The contract (see ISSUE/docs/PERFORMANCE.md): batched group training matches
the sequential scalar path to <= 1e-9 per parameter in float64, including
ragged per-worker batch sizes, workers without data, engine reuse across
rounds and alternating group sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    BatchedWorkerEngine,
    LogisticRegressionMLP,
    MnistCNN,
    SGD,
    batched_layer_supported,
    parameter_dtype,
)
from repro.nn.layers import Conv2D, Dense, Flatten, ReLU

TOL = 1e-9


def scalar_reference(model, worker_id, x, y, base, *, seed, round_index, lr, steps, batch):
    """The exact per-worker update of BaseTrainer.local_update."""
    if x.shape[0] == 0:
        return base.copy()
    model.set_vector(base)
    opt = SGD(model.parameters, lr=lr)
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, worker_id, round_index, 0x10CA1])
    )
    n = x.shape[0]
    b = min(batch, n)
    for _ in range(steps):
        idx = rng.choice(n, size=b, replace=False)
        opt.zero_grad()
        model.loss_and_grad(x[idx], y[idx])
        opt.step()
    return model.get_vector()


@pytest.fixture()
def mlp():
    return LogisticRegressionMLP(input_dim=16, hidden=12, num_classes=5, seed=0)


def make_group(rng, num_workers, features=16, classes=5, min_n=5, max_n=40):
    ids, data = [], []
    for k in range(num_workers):
        n = int(rng.integers(min_n, max_n))
        data.append(
            (rng.standard_normal((n, features)), rng.integers(0, classes, n))
        )
        ids.append(k)
    return ids, data


class TestEngineConstruction:
    def test_supported_for_mlp(self, mlp):
        assert BatchedWorkerEngine.try_build(mlp) is not None

    def test_cnn_falls_back(self):
        assert BatchedWorkerEngine.try_build(MnistCNN(image_size=8, scale=0.1)) is None

    def test_layer_support_predicate(self):
        rng = np.random.default_rng(0)
        assert batched_layer_supported(Dense("d", 4, 4, rng))
        assert batched_layer_supported(ReLU("r"))
        assert batched_layer_supported(Flatten("f"))
        assert not batched_layer_supported(Conv2D("c", 1, 2, 3, rng))


class TestEquivalence:
    def test_matches_scalar_path_ragged_batches(self, mlp):
        rng = np.random.default_rng(0)
        ids, data = make_group(rng, 6)
        base = mlp.get_vector()
        ref = np.stack(
            [
                scalar_reference(
                    mlp, w, x, y, base, seed=11, round_index=3, lr=0.2, steps=4, batch=16
                )
                for w, (x, y) in zip(ids, data)
            ]
        )
        engine = BatchedWorkerEngine.try_build(mlp)
        out = np.empty_like(ref)
        engine.run_group(
            ids, data, base, 3,
            learning_rate=0.2, local_steps=4, batch_size=16, seed=11, out=out,
        )
        assert np.abs(out - ref).max() <= TOL

    def test_worker_without_data_returns_base(self, mlp):
        rng = np.random.default_rng(1)
        ids, data = make_group(rng, 3)
        ids.append(42)
        data.append((np.zeros((0, 16)), np.zeros(0, dtype=np.int64)))
        base = mlp.get_vector()
        engine = BatchedWorkerEngine.try_build(mlp)
        out = np.empty((4, mlp.dimension))
        engine.run_group(
            ids, data, base, 1,
            learning_rate=0.1, local_steps=2, batch_size=8, seed=0, out=out,
        )
        np.testing.assert_array_equal(out[3], base)
        assert not np.array_equal(out[0], base)

    def test_deterministic_and_reusable_across_group_sizes(self, mlp):
        rng = np.random.default_rng(2)
        ids, data = make_group(rng, 5)
        base = mlp.get_vector()
        engine = BatchedWorkerEngine.try_build(mlp)
        kw = dict(learning_rate=0.2, local_steps=3, batch_size=8, seed=7)
        out1 = np.empty((5, mlp.dimension))
        engine.run_group(ids, data, base, 2, out=out1, **kw)
        # Interleave a different group size, then repeat the original call:
        # cached buffers must not leak state between signatures.
        out_small = np.empty((2, mlp.dimension))
        engine.run_group(ids[:2], data[:2], base, 5, out=out_small, **kw)
        out2 = np.empty_like(out1)
        engine.run_group(ids, data, base, 2, out=out2, **kw)
        np.testing.assert_array_equal(out1, out2)
        out_small2 = np.empty_like(out_small)
        engine.run_group(ids[:2], data[:2], base, 5, out=out_small2, **kw)
        np.testing.assert_array_equal(out_small, out_small2)

    def test_multiple_rounds_match_scalar(self, mlp):
        """Iterated rounds (engine state reuse) stay within tolerance."""
        rng = np.random.default_rng(3)
        ids, data = make_group(rng, 4)
        engine = BatchedWorkerEngine.try_build(mlp)
        base = mlp.get_vector()
        out = np.empty((4, mlp.dimension))
        for round_index in (1, 2, 3):
            ref = np.stack(
                [
                    scalar_reference(
                        mlp, w, x, y, base,
                        seed=5, round_index=round_index, lr=0.1, steps=2, batch=8,
                    )
                    for w, (x, y) in zip(ids, data)
                ]
            )
            engine.run_group(
                ids, data, base, round_index,
                learning_rate=0.1, local_steps=2, batch_size=8, seed=5, out=out,
            )
            assert np.abs(out - ref).max() <= TOL
            # Advance the shared base like an aggregation round would.
            base = ref.mean(axis=0)

    def test_out_shape_validated(self, mlp):
        rng = np.random.default_rng(4)
        ids, data = make_group(rng, 3)
        engine = BatchedWorkerEngine.try_build(mlp)
        with pytest.raises(ValueError):
            engine.run_group(
                ids, data, mlp.get_vector(), 1,
                learning_rate=0.1, local_steps=1, batch_size=8, seed=0,
                out=np.empty((2, mlp.dimension)),
            )


class TestFloat32Mode:
    def test_engine_runs_in_float32(self):
        with parameter_dtype("float32"):
            model = LogisticRegressionMLP(input_dim=16, hidden=8, num_classes=4, seed=0)
        assert model.get_vector().dtype == np.float32
        engine = BatchedWorkerEngine.try_build(model)
        assert engine is not None and engine.dtype == np.float32
        rng = np.random.default_rng(5)
        ids, data = make_group(rng, 3, classes=4)
        out = np.empty((3, model.dimension), dtype=np.float32)
        engine.run_group(
            ids, data, model.get_vector(), 1,
            learning_rate=0.1, local_steps=2, batch_size=8, seed=0, out=out,
        )
        assert np.isfinite(out).all()

    def test_float32_tracks_float64_loosely(self):
        """float32 mode follows the float64 trajectory to ~1e-4 after a few steps."""
        rng = np.random.default_rng(6)
        ids, data = make_group(rng, 3)
        results = {}
        for dtype in ("float64", "float32"):
            with parameter_dtype(dtype):
                model = LogisticRegressionMLP(input_dim=16, hidden=8, num_classes=5, seed=0)
            engine = BatchedWorkerEngine.try_build(model)
            out = np.empty((3, model.dimension), dtype=model.get_vector().dtype)
            engine.run_group(
                ids, data, model.get_vector(), 1,
                learning_rate=0.1, local_steps=3, batch_size=8, seed=1, out=out,
            )
            results[dtype] = out.astype(np.float64)
        assert np.abs(results["float64"] - results["float32"]).max() < 1e-3
