"""Unit tests for the model architectures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    MODEL_REGISTRY,
    CifarCNN,
    LogisticRegressionMLP,
    MiniVGG,
    MnistCNN,
    SGD,
    build_model,
)


class TestRegistry:
    def test_contains_all_paper_models(self):
        assert set(MODEL_REGISTRY) == {"lr", "mnist_cnn", "cifar_cnn", "mini_vgg"}

    def test_build_model_by_name(self):
        model = build_model("lr", input_dim=16, hidden=8, num_classes=3)
        assert model.dimension > 0

    def test_build_model_unknown_name(self):
        with pytest.raises(KeyError, match="unknown model"):
            build_model("resnet50")


class TestLogisticRegressionMLP:
    def test_default_parameter_count_matches_paper_architecture(self):
        # 784*512 + 512 + 512*512 + 512 + 512*10 + 10
        model = LogisticRegressionMLP()
        expected = 784 * 512 + 512 + 512 * 512 + 512 + 512 * 10 + 10
        assert model.dimension == expected

    def test_forward_shape(self):
        model = LogisticRegressionMLP(input_dim=16, hidden=8, num_classes=4)
        out = model.forward(np.zeros((5, 16)), training=False)
        assert out.shape == (5, 4)

    def test_identical_seeds_give_identical_models(self):
        a = LogisticRegressionMLP(input_dim=16, hidden=8, seed=3)
        b = LogisticRegressionMLP(input_dim=16, hidden=8, seed=3)
        np.testing.assert_array_equal(a.get_vector(), b.get_vector())

    def test_different_seeds_differ(self):
        a = LogisticRegressionMLP(input_dim=16, hidden=8, seed=3)
        b = LogisticRegressionMLP(input_dim=16, hidden=8, seed=4)
        assert not np.array_equal(a.get_vector(), b.get_vector())

    def test_vector_roundtrip(self):
        model = LogisticRegressionMLP(input_dim=16, hidden=8)
        vec = model.get_vector()
        model.set_vector(vec * 2.0)
        np.testing.assert_allclose(model.get_vector(), vec * 2.0)

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((64, 16))
        y = (x[:, 0] > 0).astype(int)
        model = LogisticRegressionMLP(input_dim=16, hidden=8, num_classes=2, seed=0)
        opt = SGD(model.parameters, lr=0.2)
        first_loss = None
        for _ in range(100):
            opt.zero_grad()
            loss = model.loss_and_grad(x, y)
            if first_loss is None:
                first_loss = loss
            opt.step()
        final_loss, acc = model.evaluate(x, y)
        assert final_loss < first_loss * 0.6
        assert acc > 0.8


class TestMnistCNN:
    def test_forward_shape(self):
        model = MnistCNN(image_size=8, scale=0.1, seed=0)
        out = model.forward(np.zeros((2, 1, 8, 8)), training=False)
        assert out.shape == (2, 10)

    def test_rejects_bad_image_size(self):
        with pytest.raises(ValueError):
            MnistCNN(image_size=10)

    def test_scale_reduces_dimension(self):
        small = MnistCNN(image_size=8, scale=0.1, seed=0)
        big = MnistCNN(image_size=8, scale=0.5, seed=0)
        assert small.dimension < big.dimension

    def test_backward_produces_gradients(self):
        model = MnistCNN(image_size=8, scale=0.1, seed=0)
        x = np.random.default_rng(0).standard_normal((4, 1, 8, 8))
        y = np.array([0, 1, 2, 3])
        model.zero_grad()
        model.loss_and_grad(x, y)
        grads = model.parameters.grad_vector()
        assert np.linalg.norm(grads) > 0


class TestCifarCNN:
    def test_forward_shape(self):
        model = CifarCNN(image_size=8, scale=0.1, seed=0)
        out = model.forward(np.zeros((3, 3, 8, 8)), training=False)
        assert out.shape == (3, 10)

    def test_rejects_bad_image_size(self):
        with pytest.raises(ValueError):
            CifarCNN(image_size=9)


class TestMiniVGG:
    def test_forward_shape(self):
        model = MiniVGG(image_size=8, num_classes=5, base_channels=2, blocks=2,
                        hidden=8, seed=0)
        out = model.forward(np.zeros((2, 3, 8, 8)), training=False)
        assert out.shape == (2, 5)

    def test_block_count_validation(self):
        with pytest.raises(ValueError):
            MiniVGG(blocks=0)
        with pytest.raises(ValueError):
            MiniVGG(image_size=8, blocks=4)  # 8 not divisible by 16

    def test_deeper_has_more_conv_layers(self):
        shallow = MiniVGG(image_size=16, blocks=2, base_channels=2, hidden=8, seed=0)
        deep = MiniVGG(image_size=16, blocks=3, base_channels=2, hidden=8, seed=0)
        def conv_names(m):
            return [n for n in m.parameters.names() if "conv" in n]

        assert len(conv_names(deep)) > len(conv_names(shallow))


class TestModelEvaluate:
    def test_evaluate_on_empty_dataset(self):
        model = LogisticRegressionMLP(input_dim=4, hidden=4, num_classes=2)
        loss, acc = model.evaluate(np.zeros((0, 4)), np.zeros(0, dtype=int))
        assert loss == 0.0 and acc == 0.0

    def test_evaluate_batches_cover_all_samples(self):
        model = LogisticRegressionMLP(input_dim=4, hidden=4, num_classes=2, seed=0)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((100, 4))
        y = rng.integers(0, 2, size=100)
        full_loss, full_acc = model.evaluate(x, y, batch_size=1000)
        batched_loss, batched_acc = model.evaluate(x, y, batch_size=7)
        assert batched_loss == pytest.approx(full_loss)
        assert batched_acc == pytest.approx(full_acc)

    def test_evaluate_does_not_change_parameters(self):
        model = LogisticRegressionMLP(input_dim=4, hidden=4, num_classes=2, seed=0)
        before = model.get_vector()
        model.evaluate(np.ones((10, 4)), np.zeros(10, dtype=int))
        np.testing.assert_array_equal(model.get_vector(), before)
