"""Unit tests for federated data partitioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    PARTITIONERS,
    Partition,
    make_mnist_like,
    make_partition,
    partition_dirichlet,
    partition_iid,
    partition_label_skew,
)


@pytest.fixture(scope="module")
def dataset():
    return make_mnist_like(num_train=400, num_test=40, image_size=8, seed=2)


class TestPartitionContainer:
    def test_data_sizes_and_total(self, dataset):
        part = partition_iid(dataset, num_workers=8, seed=0)
        sizes = part.data_sizes()
        assert sizes.sum() == dataset.num_train
        assert part.total_size == dataset.num_train

    def test_proportions_sum_to_one(self, dataset):
        part = partition_iid(dataset, num_workers=8, seed=0)
        assert part.proportions().sum() == pytest.approx(1.0)

    def test_class_counts_shape_and_total(self, dataset):
        part = partition_iid(dataset, num_workers=8, seed=0)
        counts = part.class_counts()
        assert counts.shape == (8, 10)
        assert counts.sum() == dataset.num_train

    def test_class_distribution_rows_sum_to_one(self, dataset):
        part = partition_label_skew(dataset, num_workers=10, seed=0)
        dist = part.class_distribution()
        np.testing.assert_allclose(dist.sum(axis=1), 1.0)

    def test_global_distribution_matches_label_frequencies(self, dataset):
        part = partition_iid(dataset, num_workers=5, seed=0)
        expected = np.bincount(dataset.y_train, minlength=10) / dataset.num_train
        np.testing.assert_allclose(part.global_distribution(), expected)

    def test_empty_worker_gets_uniform_distribution(self, dataset):
        part = Partition(
            indices=[np.arange(10), np.empty(0, dtype=int)],
            num_classes=10,
            labels=dataset.y_train,
        )
        dist = part.class_distribution()
        np.testing.assert_allclose(dist[1], 0.1)

    def test_validate_detects_overlap(self, dataset):
        part = Partition(
            indices=[np.array([0, 1, 2]), np.array([2, 3])],
            num_classes=10,
            labels=dataset.y_train,
        )
        with pytest.raises(ValueError, match="shares samples"):
            part.validate()

    def test_validate_detects_out_of_range(self, dataset):
        part = Partition(
            indices=[np.array([0, dataset.num_train + 5])],
            num_classes=10,
            labels=dataset.y_train,
        )
        with pytest.raises(ValueError, match="out-of-range"):
            part.validate()

    def test_validate_passes_for_good_partition(self, dataset):
        partition_iid(dataset, num_workers=4, seed=0).validate()


class TestIIDPartition:
    def test_covers_all_samples_without_overlap(self, dataset):
        part = partition_iid(dataset, num_workers=7, seed=1)
        all_idx = np.concatenate(part.indices)
        assert len(all_idx) == dataset.num_train
        assert len(np.unique(all_idx)) == dataset.num_train

    def test_sizes_balanced(self, dataset):
        part = partition_iid(dataset, num_workers=7, seed=1)
        sizes = part.data_sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_label_distributions_close_to_global(self, dataset):
        part = partition_iid(dataset, num_workers=4, seed=1)
        global_dist = part.global_distribution()
        for row in part.class_distribution():
            assert np.abs(row - global_dist).sum() < 0.4

    def test_rejects_zero_workers(self, dataset):
        with pytest.raises(ValueError):
            partition_iid(dataset, num_workers=0)

    def test_deterministic(self, dataset):
        a = partition_iid(dataset, num_workers=5, seed=3)
        b = partition_iid(dataset, num_workers=5, seed=3)
        for ia, ib in zip(a.indices, b.indices):
            np.testing.assert_array_equal(ia, ib)


class TestLabelSkewPartition:
    def test_single_label_per_worker(self, dataset):
        part = partition_label_skew(dataset, num_workers=10, labels_per_worker=1, seed=0)
        counts = part.class_counts()
        # Every worker holds samples of exactly one class.
        assert np.all((counts > 0).sum(axis=1) == 1)

    def test_paper_block_structure(self, dataset):
        """With N = 10k workers, consecutive blocks share a class (v1-v10 hold '0')."""
        part = partition_label_skew(dataset, num_workers=20, labels_per_worker=1, seed=0)
        counts = part.class_counts()
        worker_class = counts.argmax(axis=1)
        # Workers 0 and 1 share a class, workers 2 and 3 the next, etc.
        assert worker_class[0] == worker_class[1]
        assert worker_class[0] != worker_class[2]

    def test_two_labels_per_worker(self, dataset):
        part = partition_label_skew(dataset, num_workers=10, labels_per_worker=2, seed=0)
        counts = part.class_counts()
        assert np.all((counts > 0).sum(axis=1) <= 2)
        assert np.all((counts > 0).sum(axis=1) >= 1)

    def test_covers_all_samples(self, dataset):
        part = partition_label_skew(dataset, num_workers=10, seed=0)
        all_idx = np.concatenate([ix for ix in part.indices if ix.size])
        assert len(np.unique(all_idx)) == len(all_idx)
        assert len(all_idx) == dataset.num_train

    def test_rejects_bad_arguments(self, dataset):
        with pytest.raises(ValueError):
            partition_label_skew(dataset, num_workers=0)
        with pytest.raises(ValueError):
            partition_label_skew(dataset, num_workers=5, labels_per_worker=0)

    def test_more_workers_than_samples_of_a_class(self, dataset):
        # 80 workers over ~40 samples per class still yields a valid partition.
        part = partition_label_skew(dataset, num_workers=80, seed=0)
        part.validate()
        assert part.num_workers == 80


class TestDirichletPartition:
    def test_covers_all_samples(self, dataset):
        part = partition_dirichlet(dataset, num_workers=8, alpha=0.5, seed=0)
        all_idx = np.concatenate(part.indices)
        assert len(np.unique(all_idx)) == len(all_idx)

    def test_minimum_samples_respected(self, dataset):
        part = partition_dirichlet(dataset, num_workers=8, alpha=0.5, seed=0,
                                   min_samples=3)
        assert part.data_sizes().min() >= 3

    def test_small_alpha_more_skewed_than_large(self, dataset):
        skewed = partition_dirichlet(dataset, num_workers=6, alpha=0.1, seed=1)
        uniform = partition_dirichlet(dataset, num_workers=6, alpha=100.0, seed=1)
        global_dist = skewed.global_distribution()

        def avg_emd(part):
            return np.abs(part.class_distribution() - global_dist).sum(axis=1).mean()

        assert avg_emd(skewed) > avg_emd(uniform)

    def test_rejects_bad_alpha(self, dataset):
        with pytest.raises(ValueError):
            partition_dirichlet(dataset, num_workers=4, alpha=0.0)

    def test_rejects_impossible_min_samples(self, dataset):
        with pytest.raises(ValueError):
            partition_dirichlet(dataset, num_workers=400, alpha=1.0, min_samples=10)


class TestPartitionRegistry:
    def test_registry_names(self):
        assert set(PARTITIONERS) == {"iid", "label-skew", "dirichlet"}

    def test_make_partition_dispatch(self, dataset):
        part = make_partition("iid", dataset, num_workers=4, seed=0)
        assert part.num_workers == 4

    def test_make_partition_unknown(self, dataset):
        with pytest.raises(KeyError, match="unknown partition strategy"):
            make_partition("pathological", dataset, num_workers=4)
