"""Unit tests for label-distribution statistics (EMD, Table III quantities)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    average_emd,
    emd,
    group_class_counts,
    group_data_sizes,
    group_distributions,
    group_emds,
    make_mnist_like,
    partition_label_skew,
    worker_emds,
)


@pytest.fixture(scope="module")
def skew_partition():
    dataset = make_mnist_like(num_train=400, num_test=40, image_size=8, seed=3)
    return partition_label_skew(dataset, num_workers=20, seed=3)


class TestEMD:
    def test_identical_distributions(self):
        p = np.array([0.2, 0.3, 0.5])
        assert emd(p, p) == 0.0

    def test_disjoint_distributions_is_two(self):
        assert emd(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(2.0)

    def test_paper_example_value(self):
        """Single-class worker vs uniform 10-class global: EMD = 1.8 (Sec. VI-B3)."""
        single = np.zeros(10)
        single[0] = 1.0
        uniform = np.full(10, 0.1)
        assert emd(uniform, single) == pytest.approx(1.8)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        p = rng.dirichlet(np.ones(6))
        q = rng.dirichlet(np.ones(6))
        assert emd(p, q) == pytest.approx(emd(q, p))

    def test_normalizes_unnormalized_inputs(self):
        assert emd(np.array([2.0, 2.0]), np.array([5.0, 5.0])) == pytest.approx(0.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            emd(np.ones(3), np.ones(4))

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            emd(np.array([0.5, -0.5]), np.array([0.5, 0.5]))

    def test_rejects_zero_sum(self):
        with pytest.raises(ValueError):
            emd(np.zeros(3), np.ones(3))


class TestGroupStatistics:
    def test_group_class_counts_sum(self, skew_partition):
        groups = [[0, 1, 2], [3, 4], list(range(5, 20))]
        counts = group_class_counts(skew_partition, groups)
        assert counts.sum() == skew_partition.total_size

    def test_group_data_sizes(self, skew_partition):
        groups = [[0, 1], [2, 3, 4]]
        sizes = group_data_sizes(skew_partition, groups)
        expected0 = skew_partition.data_sizes()[[0, 1]].sum()
        assert sizes[0] == expected0

    def test_group_distributions_sum_to_one(self, skew_partition):
        groups = [[0, 1, 2, 3], [4, 5, 6, 7]]
        dist = group_distributions(skew_partition, groups)
        np.testing.assert_allclose(dist.sum(axis=1), 1.0)

    def test_rejects_worker_in_two_groups(self, skew_partition):
        with pytest.raises(ValueError, match="more than one group"):
            group_class_counts(skew_partition, [[0, 1], [1, 2]])

    def test_rejects_invalid_worker(self, skew_partition):
        with pytest.raises(ValueError, match="invalid worker"):
            group_class_counts(skew_partition, [[0, 99]])

    def test_single_group_of_everything_has_zero_emd(self, skew_partition):
        groups = [list(range(skew_partition.num_workers))]
        assert group_emds(skew_partition, groups)[0] == pytest.approx(0.0)

    def test_singleton_groups_match_worker_emds(self, skew_partition):
        singles = [[i] for i in range(skew_partition.num_workers)]
        np.testing.assert_allclose(
            group_emds(skew_partition, singles), worker_emds(skew_partition)
        )

    def test_worker_emds_close_to_paper_value(self, skew_partition):
        """Single-label workers against a near-uniform global distribution."""
        values = worker_emds(skew_partition)
        assert np.all(values > 1.5)
        assert np.all(values <= 2.0)

    def test_average_emd_decreases_with_mixing(self, skew_partition):
        """Mixing workers of different classes lowers the average EMD."""
        # Workers 2i and 2i+1 hold the same class (paper block structure), so
        # pairing same-class workers changes nothing, while pairing across
        # blocks mixes two classes.
        same_class_pairs = [[2 * i, 2 * i + 1] for i in range(10)]
        cross_class_pairs = [[i, 10 + i] for i in range(10)]
        assert average_emd(skew_partition, cross_class_pairs) < average_emd(
            skew_partition, same_class_pairs
        )

    def test_average_emd_rejects_empty(self, skew_partition):
        with pytest.raises(ValueError):
            average_emd(skew_partition, [])
