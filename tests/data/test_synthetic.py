"""Unit tests for synthetic dataset generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DATASET_REGISTRY,
    Dataset,
    SyntheticImageConfig,
    load_dataset,
    make_cifar10_like,
    make_imagenet100_like,
    make_mnist_like,
    make_synthetic_images,
)


class TestDatasetContainer:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dataset(
                name="x",
                x_train=np.zeros((3, 4)),
                y_train=np.zeros(2, dtype=int),
                x_test=np.zeros((1, 4)),
                y_test=np.zeros(1, dtype=int),
                num_classes=2,
            )

    def test_counts_and_shape(self):
        ds = make_mnist_like(num_train=50, num_test=10, image_size=8, seed=0)
        assert ds.num_train == 50
        assert ds.num_test == 10
        assert ds.sample_shape == (1, 8, 8)

    def test_flattened(self):
        ds = make_mnist_like(num_train=20, num_test=5, image_size=8, seed=0)
        flat = ds.flattened()
        assert flat.x_train.shape == (20, 64)
        assert flat.num_classes == ds.num_classes
        np.testing.assert_array_equal(flat.y_train, ds.y_train)

    def test_subset(self):
        ds = make_mnist_like(num_train=20, num_test=5, image_size=8, seed=0)
        idx = np.array([3, 5, 7])
        x, y = ds.subset(idx)
        assert x.shape[0] == 3
        np.testing.assert_array_equal(y, ds.y_train[idx])


class TestSyntheticGeneration:
    def test_deterministic_given_seed(self):
        a = make_mnist_like(num_train=30, num_test=10, image_size=8, seed=5)
        b = make_mnist_like(num_train=30, num_test=10, image_size=8, seed=5)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_different_seed_changes_data(self):
        a = make_mnist_like(num_train=30, num_test=10, image_size=8, seed=5)
        b = make_mnist_like(num_train=30, num_test=10, image_size=8, seed=6)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_train_standardized(self):
        ds = make_mnist_like(num_train=500, num_test=50, image_size=8, seed=0)
        assert abs(ds.x_train.mean()) < 0.05
        assert abs(ds.x_train.std() - 1.0) < 0.05

    def test_all_classes_present(self):
        ds = make_mnist_like(num_train=500, num_test=100, image_size=8, seed=0)
        assert set(np.unique(ds.y_train)) == set(range(10))

    def test_labels_in_range(self):
        ds = make_imagenet100_like(num_train=300, num_test=50, image_size=8,
                                   num_classes=20, seed=0)
        assert ds.y_train.min() >= 0 and ds.y_train.max() < 20

    def test_classes_are_learnable(self):
        """A nearest-prototype classifier should beat chance comfortably."""
        ds = make_mnist_like(num_train=400, num_test=100, image_size=8, seed=0)
        x = ds.x_train.reshape(ds.num_train, -1)
        xt = ds.x_test.reshape(ds.num_test, -1)
        centroids = np.stack([x[ds.y_train == c].mean(axis=0) for c in range(10)])
        dists = ((xt[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        acc = (dists.argmin(axis=1) == ds.y_test).mean()
        assert acc > 0.5  # chance level is 0.1

    def test_cifar_like_has_three_channels(self):
        ds = make_cifar10_like(num_train=20, num_test=5, image_size=8, seed=0)
        assert ds.sample_shape == (3, 8, 8)

    def test_cifar_harder_than_mnist(self):
        """CIFAR-like uses more noise, so prototype classification is harder."""
        def prototype_acc(ds):
            x = ds.x_train.reshape(ds.num_train, -1)
            xt = ds.x_test.reshape(ds.num_test, -1)
            cent = np.stack([x[ds.y_train == c].mean(axis=0) for c in range(10)])
            d = ((xt[:, None, :] - cent[None]) ** 2).sum(axis=2)
            return (d.argmin(axis=1) == ds.y_test).mean()

        mnist = make_mnist_like(num_train=500, num_test=200, image_size=8, seed=1)
        cifar = make_cifar10_like(num_train=500, num_test=200, image_size=8, seed=1)
        assert prototype_acc(cifar) < prototype_acc(mnist)

    def test_imagenet_like_class_count(self):
        ds = make_imagenet100_like(num_train=500, num_test=50, image_size=8, seed=0)
        assert ds.num_classes == 100


class TestValidationAndRegistry:
    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            make_synthetic_images(SyntheticImageConfig(num_classes=1), "x")

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            make_synthetic_images(
                SyntheticImageConfig(num_classes=10, num_train=5), "x"
            )

    def test_registry_contains_three_datasets(self):
        assert set(DATASET_REGISTRY) == {
            "synthetic-mnist",
            "synthetic-cifar10",
            "synthetic-imagenet100",
        }

    def test_load_dataset(self):
        ds = load_dataset("synthetic-mnist", num_train=30, num_test=10, image_size=8)
        assert ds.name == "synthetic-mnist"

    def test_load_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("mnist-real")
