"""Unit tests for over-the-air aggregation over the noisy fading MAC."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import (
    aircomp_aggregate,
    aircomp_latency,
    aggregation_error_term,
    ideal_group_average,
)


RNG = lambda: np.random.default_rng(0)  # noqa: E731


class TestIdealGroupAverage:
    def test_weighted_average(self):
        models = [np.array([1.0, 1.0]), np.array([3.0, 3.0])]
        avg = ideal_group_average(models, [1.0, 3.0])
        np.testing.assert_allclose(avg, [2.5, 2.5])

    def test_equal_weights(self):
        models = [np.array([0.0]), np.array([2.0])]
        np.testing.assert_allclose(ideal_group_average(models, [5, 5]), [1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ideal_group_average([], [])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ideal_group_average([np.zeros(2)], [1.0, 2.0])

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            ideal_group_average([np.zeros(2)], [0.0])


class TestAirCompAggregate:
    def test_noiseless_matched_factors_recover_weighted_sum(self):
        """With z = 0 and σ = √η the estimate equals Σ d_i w_i / D exactly."""
        models = [np.array([1.0, 2.0]), np.array([3.0, -1.0])]
        sizes = [10.0, 30.0]
        gains = [0.5, 2.0]
        result = aircomp_aggregate(
            models, sizes, gains, sigma_t=2.0, eta_t=4.0, noise_std=0.0,
            rng=RNG(),
        )
        expected = ideal_group_average(models, sizes)
        np.testing.assert_allclose(result.estimate, expected)

    def test_global_normalization_scales_by_group_share(self):
        models = [np.ones(3)]
        result = aircomp_aggregate(
            models, [20.0], [1.0], sigma_t=1.0, eta_t=1.0, noise_std=0.0,
            rng=RNG(), total_data_size=100.0,
        )
        # Group holds 20 of 100 samples, so the estimate is 0.2 * w.
        np.testing.assert_allclose(result.estimate, 0.2)

    def test_received_signal_is_superposition(self):
        models = [np.array([1.0]), np.array([2.0])]
        result = aircomp_aggregate(
            models, [5.0, 10.0], [1.0, 1.0], sigma_t=3.0, eta_t=9.0,
            noise_std=0.0, rng=RNG(),
        )
        np.testing.assert_allclose(result.received, [5 * 3 * 1 + 10 * 3 * 2])

    def test_transmit_power_follows_inverse_channel(self):
        result = aircomp_aggregate(
            [np.ones(2), np.ones(2)], [4.0, 4.0], [0.5, 2.0], sigma_t=1.0,
            eta_t=1.0, noise_std=0.0, rng=RNG(),
        )
        np.testing.assert_allclose(result.transmit_powers, [8.0, 2.0])

    def test_energy_matches_eq7(self):
        w = np.array([1.0, 2.0, 2.0])
        result = aircomp_aggregate(
            [w], [3.0], [1.5], sigma_t=2.0, eta_t=4.0, noise_std=0.0, rng=RNG(),
        )
        power = 3.0 * 2.0 / 1.5
        np.testing.assert_allclose(result.transmit_energies, [power**2 * 9.0])

    def test_noise_perturbs_estimate(self):
        models = [np.zeros(1000)]
        result = aircomp_aggregate(
            models, [1.0], [1.0], sigma_t=1.0, eta_t=1.0, noise_std=0.5,
            rng=RNG(),
        )
        assert result.noise_norm > 0
        assert np.abs(result.estimate).mean() > 0

    def test_noise_statistics(self):
        """The injected noise has (approximately) the requested std."""
        models = [np.zeros(20000)]
        result = aircomp_aggregate(
            models, [1.0], [1.0], sigma_t=1.0, eta_t=1.0, noise_std=0.3,
            rng=RNG(),
        )
        assert abs(result.received.std() - 0.3) < 0.01

    def test_denoising_factor_scales_estimate(self):
        models = [np.ones(4)]
        small_eta = aircomp_aggregate(
            models, [2.0], [1.0], sigma_t=1.0, eta_t=0.25, noise_std=0.0, rng=RNG()
        )
        # estimate = sigma / sqrt(eta) * w = 2 * w
        np.testing.assert_allclose(small_eta.estimate, 2.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sigma_t": 0.0, "eta_t": 1.0, "noise_std": 0.0},
            {"sigma_t": 1.0, "eta_t": 0.0, "noise_std": 0.0},
            {"sigma_t": 1.0, "eta_t": 1.0, "noise_std": -1.0},
        ],
    )
    def test_invalid_factors(self, kwargs):
        with pytest.raises(ValueError):
            aircomp_aggregate([np.ones(2)], [1.0], [1.0], rng=RNG(), **kwargs)

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError):
            aircomp_aggregate([], [], [], sigma_t=1, eta_t=1, noise_std=0, rng=RNG())

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ValueError):
            aircomp_aggregate(
                [np.ones(2), np.ones(3)], [1, 1], [1, 1],
                sigma_t=1, eta_t=1, noise_std=0, rng=RNG(),
            )

    def test_rejects_nonpositive_gains(self):
        with pytest.raises(ValueError):
            aircomp_aggregate(
                [np.ones(2)], [1.0], [0.0], sigma_t=1, eta_t=1, noise_std=0, rng=RNG()
            )


class TestAggregationErrorTerm:
    def test_zero_when_matched_and_noiseless(self):
        assert aggregation_error_term(2.0, 4.0, 1.0, 0.0, 10.0) == pytest.approx(0.0)

    def test_known_value(self):
        # (1/sqrt(4) - 1)^2 * 9 + 1 / (25 * 4) = 0.25*9 + 0.01 = 2.26
        val = aggregation_error_term(1.0, 4.0, 3.0, 1.0, 5.0)
        assert val == pytest.approx(2.26)

    def test_increases_with_noise(self):
        low = aggregation_error_term(1.0, 1.0, 1.0, 0.1, 5.0)
        high = aggregation_error_term(1.0, 1.0, 1.0, 1.0, 5.0)
        assert high > low

    def test_decreases_with_group_size(self):
        small = aggregation_error_term(1.0, 1.0, 1.0, 1.0, 5.0)
        large = aggregation_error_term(1.0, 1.0, 1.0, 1.0, 50.0)
        assert large < small

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            aggregation_error_term(0.0, 1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            aggregation_error_term(1.0, 1.0, 1.0, 1.0, 0.0)


class TestAirCompLatency:
    def test_formula(self):
        # L_u = ceil(q / R) * Ls
        assert aircomp_latency(1000, 10, 0.01) == pytest.approx(1.0)

    def test_independent_of_worker_count(self):
        """The core scalability property: latency depends only on q, R, Ls."""
        assert aircomp_latency(640, 64, 1e-4) == aircomp_latency(640, 64, 1e-4)

    def test_rounds_up_partial_symbols(self):
        assert aircomp_latency(101, 100, 1.0) == pytest.approx(2.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            aircomp_latency(0, 1, 1.0)
        with pytest.raises(ValueError):
            aircomp_latency(10, 0, 1.0)
        with pytest.raises(ValueError):
            aircomp_latency(10, 1, 0.0)
