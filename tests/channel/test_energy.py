"""Unit tests for transmit-energy accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import EnergyTracker, max_sigma_for_budget, transmit_energy


class TestTransmitEnergy:
    def test_matches_eq7(self):
        w = np.array([1.0, 2.0])
        # p = d*sigma/h = 4*0.5/2 = 1 -> E = p^2 * ||w||^2 = 5
        assert transmit_energy(w, 4.0, 2.0, 0.5) == pytest.approx(5.0)

    def test_scales_quadratically_with_sigma(self):
        w = np.ones(3)
        e1 = transmit_energy(w, 1.0, 1.0, 1.0)
        e2 = transmit_energy(w, 1.0, 1.0, 2.0)
        assert e2 == pytest.approx(4 * e1)

    def test_better_channel_needs_less_energy(self):
        w = np.ones(3)
        assert transmit_energy(w, 1.0, 2.0, 1.0) < transmit_energy(w, 1.0, 0.5, 1.0)

    @pytest.mark.parametrize("bad", [dict(data_size=0), dict(channel_gain=0), dict(sigma_t=0)])
    def test_invalid_arguments(self, bad):
        kwargs = dict(data_size=1.0, channel_gain=1.0, sigma_t=1.0)
        kwargs.update(bad)
        with pytest.raises(ValueError):
            transmit_energy(np.ones(2), **kwargs)


class TestMaxSigmaForBudget:
    def test_budget_is_respected_at_the_cap(self):
        """Transmitting at the returned σ with ||w|| = W uses exactly Ê."""
        budget, d, h, W = 10.0, 4.0, 1.5, 2.0
        sigma = max_sigma_for_budget(budget, d, h, W)
        w = np.array([W, 0.0])  # a vector with norm exactly W
        assert transmit_energy(w, d, h, sigma) == pytest.approx(budget)

    def test_more_budget_allows_larger_sigma(self):
        lo = max_sigma_for_budget(1.0, 1.0, 1.0, 1.0)
        hi = max_sigma_for_budget(100.0, 1.0, 1.0, 1.0)
        assert hi == pytest.approx(10 * lo)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            max_sigma_for_budget(0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            max_sigma_for_budget(1.0, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            max_sigma_for_budget(1.0, 1.0, 1.0, 0.0)


class TestEnergyTracker:
    def test_accumulates_per_worker_and_total(self):
        tracker = EnergyTracker(num_workers=3)
        tracker.record_round([0, 2], [1.5, 2.5])
        tracker.record_round([0], [1.0])
        assert tracker.per_worker[0] == pytest.approx(2.5)
        assert tracker.per_worker[1] == 0.0
        assert tracker.total == pytest.approx(5.0)
        assert tracker.per_round == [4.0, 1.0]

    def test_record_returns_round_total(self):
        tracker = EnergyTracker(num_workers=2)
        assert tracker.record_round([0, 1], [1.0, 2.0]) == pytest.approx(3.0)

    def test_summary_keys(self):
        tracker = EnergyTracker(num_workers=2)
        tracker.record_round([0], [4.0])
        s = tracker.summary()
        assert s["total_energy_j"] == pytest.approx(4.0)
        assert s["rounds_recorded"] == 1.0

    def test_invalid_worker_id(self):
        tracker = EnergyTracker(num_workers=2)
        with pytest.raises(ValueError):
            tracker.record_round([5], [1.0])

    def test_negative_energy_rejected(self):
        tracker = EnergyTracker(num_workers=2)
        with pytest.raises(ValueError):
            tracker.record_round([0], [-1.0])

    def test_length_mismatch_rejected(self):
        tracker = EnergyTracker(num_workers=2)
        with pytest.raises(ValueError):
            tracker.record_round([0, 1], [1.0])

    def test_requires_at_least_one_worker(self):
        with pytest.raises(ValueError):
            EnergyTracker(num_workers=0)
