"""Unit tests for channel gain models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import RayleighFading, StaticChannel, build_channel


class TestRayleighFading:
    def test_gains_positive_and_correct_length(self):
        ch = RayleighFading(num_workers=16, seed=0)
        g = ch.gains(0)
        assert g.shape == (16,)
        assert np.all(g > 0)

    def test_block_fading_same_round_same_gains(self):
        ch = RayleighFading(num_workers=8, seed=1)
        np.testing.assert_array_equal(ch.gains(3), ch.gains(3))

    def test_gains_change_across_rounds(self):
        ch = RayleighFading(num_workers=8, seed=1)
        assert not np.array_equal(ch.gains(0), ch.gains(1))

    def test_same_seed_reproducible(self):
        a = RayleighFading(num_workers=8, seed=5).gains(2)
        b = RayleighFading(num_workers=8, seed=5).gains(2)
        np.testing.assert_array_equal(a, b)

    def test_mean_gain_scaling(self):
        small = RayleighFading(num_workers=2000, mean_gain=1.0, pathloss_spread=1.0, seed=0)
        large = RayleighFading(num_workers=2000, mean_gain=4.0, pathloss_spread=1.0, seed=0)
        assert large.gains(0).mean() == pytest.approx(4 * small.gains(0).mean(), rel=1e-9)

    def test_unit_mean_rayleigh(self):
        ch = RayleighFading(num_workers=20000, mean_gain=1.0, pathloss_spread=1.0, seed=3)
        # With no path-loss spread the fading is normalized to unit mean.
        assert abs(ch.gains(7).mean() - 1.0) < 0.02

    def test_pathloss_spread_bounds_average_gains(self):
        ch = RayleighFading(num_workers=100, mean_gain=1.0, pathloss_spread=3.0, seed=0)
        avg = ch.average_gains
        assert np.all(avg >= 1.0 / 3.0 - 1e-12)
        assert np.all(avg <= 3.0 + 1e-12)

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            RayleighFading(num_workers=4, seed=0).gains(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_workers": 0},
            {"num_workers": 4, "mean_gain": 0.0},
            {"num_workers": 4, "pathloss_spread": 0.5},
        ],
    )
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            RayleighFading(**kwargs)


class TestStaticChannel:
    def test_constant_across_rounds(self):
        ch = StaticChannel(num_workers=6, seed=0)
        np.testing.assert_array_equal(ch.gains(0), ch.gains(10))

    def test_unit_spread_gives_equal_gains(self):
        ch = StaticChannel(num_workers=6, mean_gain=2.0, spread=1.0, seed=0)
        np.testing.assert_allclose(ch.gains(0), 2.0)

    def test_spread_creates_heterogeneous_gains(self):
        ch = StaticChannel(num_workers=50, mean_gain=1.0, spread=4.0, seed=0)
        g = ch.gains(0)
        assert g.max() / g.min() > 1.5

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            StaticChannel(num_workers=0)
        with pytest.raises(ValueError):
            StaticChannel(num_workers=3, spread=0.9)
        with pytest.raises(ValueError):
            StaticChannel(num_workers=3).gains(-2)


class TestFactory:
    def test_build_rayleigh(self):
        ch = build_channel("rayleigh", num_workers=5, seed=1)
        assert isinstance(ch, RayleighFading)

    def test_build_static(self):
        ch = build_channel("static", num_workers=5, seed=1)
        assert isinstance(ch, StaticChannel)

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            build_channel("mmwave", num_workers=5)
