"""Unit tests for OMA (TDMA/OFDMA) upload-latency models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import OMAConfig, ofdma_round_time, tdma_round_time, worker_upload_time


CFG = OMAConfig(bandwidth_hz=1e6, transmit_power_w=1.0, noise_power_w=1e-3)


class TestOMAConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bandwidth_hz": 0.0},
            {"transmit_power_w": 0.0},
            {"noise_power_w": 0.0},
            {"bits_per_param": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            OMAConfig(**kwargs)


class TestWorkerUploadTime:
    def test_positive(self):
        assert worker_upload_time(10_000, 1.0, CFG) > 0

    def test_scales_linearly_with_model_dimension(self):
        t1 = worker_upload_time(10_000, 1.0, CFG)
        t2 = worker_upload_time(20_000, 1.0, CFG)
        assert t2 == pytest.approx(2 * t1)

    def test_better_channel_is_faster(self):
        slow = worker_upload_time(10_000, 0.3, CFG)
        fast = worker_upload_time(10_000, 3.0, CFG)
        assert fast < slow

    def test_smaller_band_share_is_slower(self):
        full = worker_upload_time(10_000, 1.0, CFG, bandwidth_share=1.0)
        half = worker_upload_time(10_000, 1.0, CFG, bandwidth_share=0.5)
        assert half > full

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            worker_upload_time(0, 1.0, CFG)
        with pytest.raises(ValueError):
            worker_upload_time(10, 0.0, CFG)
        with pytest.raises(ValueError):
            worker_upload_time(10, 1.0, CFG, bandwidth_share=0.0)
        with pytest.raises(ValueError):
            worker_upload_time(10, 1.0, CFG, bandwidth_share=1.5)


class TestRoundTimes:
    def test_tdma_is_sum_of_worker_times(self):
        gains = [1.0, 2.0, 0.5]
        expected = sum(worker_upload_time(5000, g, CFG) for g in gains)
        assert tdma_round_time(5000, gains, CFG) == pytest.approx(expected)

    def test_tdma_grows_with_worker_count(self):
        """The OMA scalability problem: more workers, longer upload phase."""
        few = tdma_round_time(5000, np.ones(10), CFG)
        many = tdma_round_time(5000, np.ones(100), CFG)
        assert many == pytest.approx(10 * few)

    def test_ofdma_is_slowest_worker_on_its_share(self):
        gains = [1.0, 1.0]
        expected = worker_upload_time(5000, 1.0, CFG, bandwidth_share=0.5)
        assert ofdma_round_time(5000, gains, CFG) == pytest.approx(expected)

    def test_ofdma_also_degrades_with_worker_count(self):
        few = ofdma_round_time(5000, np.ones(4), CFG)
        many = ofdma_round_time(5000, np.ones(40), CFG)
        assert many > few

    def test_empty_worker_list_rejected(self):
        with pytest.raises(ValueError):
            tdma_round_time(5000, [], CFG)
        with pytest.raises(ValueError):
            ofdma_round_time(5000, [], CFG)
