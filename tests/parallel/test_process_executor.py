"""Serial-vs-multiprocess equivalence and lifecycle of ProcessGroupExecutor.

The contract under test (docs/ARCHITECTURE.md, "Process-pool data flow"):
training a group on the worker-process pool is **bit-identical in
float64** to the serial batched engine — for MLP and CNN models, for
1/2/4-process pools, for ragged groups (per-worker batch sizes that
differ) and across pool crashes (the executor respawns the pool and, with
the restart budget exhausted, falls back to an in-process run, never
changing a result).
"""

from __future__ import annotations

import os
import signal
import time
import warnings

import numpy as np
import pytest

from repro.core import AirFedGAConfig, GroupingConfig, ParallelismConfig
from repro.experiments.bench import bench_grouped_round_mp
from repro.experiments.configs import cnn_mnist_config, lr_mnist_config
from repro.experiments.runner import build_experiment
from repro.fl.registry import build_trainer
from repro.nn.batched import BatchedWorkerEngine, shared_stack_view
from repro.nn.layers import Dense, Dropout, ReLU
from repro.nn.models import LogisticRegressionMLP, MnistCNN, SequentialModel
from repro.parallel import ProcessGroupExecutor, UnsupportedModelError

HYPER = dict(learning_rate=0.2, local_steps=2, batch_size=16, seed=11)


def _make_worker_data(counts, feat_shape=(64,), seed=0):
    rng = np.random.default_rng(seed)
    data = []
    for n in counts:
        x = rng.standard_normal((n,) + feat_shape)
        y = rng.integers(0, 10, size=n)
        data.append((x, y))
    return data


def _serial_reference(model, worker_data, ids, base, round_index=3):
    engine = BatchedWorkerEngine.try_build(model)
    assert engine is not None
    out = np.empty((len(ids), model.dimension))
    engine.run_group(ids, [worker_data[w] for w in ids], base, round_index, out=out, **HYPER)
    return out


# ----------------------------------------------------------------------
# Executor-level equivalence
# ----------------------------------------------------------------------
class TestExecutorEquivalence:
    @pytest.mark.parametrize("num_processes", [1, 2, 4])
    def test_mlp_uniform_group_bit_exact(self, num_processes):
        model = LogisticRegressionMLP(input_dim=64, hidden=8, num_classes=10, seed=3)
        worker_data = _make_worker_data([24] * 6)
        ids = list(range(6))
        base = model.get_vector()
        expected = _serial_reference(model, worker_data, ids, base)
        with ProcessGroupExecutor(
            model, worker_data, num_processes=num_processes, **HYPER
        ) as ex:
            got = ex.run_group(ids, base, round_index=3)
            assert np.array_equal(got, expected)

    @pytest.mark.parametrize("num_processes", [2, 4])
    def test_mlp_ragged_group_bit_exact(self, num_processes):
        # Per-worker sample counts below the batch size make the padded
        # batch geometry ragged; shards are pinned to the group's padded
        # dimension (pad_to), so sharding must not change a single bit.
        model = LogisticRegressionMLP(input_dim=64, hidden=8, num_classes=10, seed=3)
        worker_data = _make_worker_data([20, 7, 3, 16, 1, 12])
        ids = list(range(6))
        base = model.get_vector()
        expected = _serial_reference(model, worker_data, ids, base)
        with ProcessGroupExecutor(
            model, worker_data, num_processes=num_processes, **HYPER
        ) as ex:
            got = ex.run_group(ids, base, round_index=3)
            assert np.array_equal(got, expected)

    def test_cnn_group_spanning_conv_tiles_bit_exact(self):
        # 14 workers > the conv group tile (12): the serial engine splits
        # the group into tiles internally, and the executor must align its
        # shard boundaries to those tiles to reproduce the call tree.
        model = MnistCNN(image_size=8, scale=0.08, num_classes=10, seed=5)
        worker_data = _make_worker_data([10] * 14, feat_shape=(1, 8, 8), seed=2)
        ids = list(range(14))
        base = model.get_vector()
        expected = _serial_reference(model, worker_data, ids, base)
        with ProcessGroupExecutor(model, worker_data, num_processes=2, **HYPER) as ex:
            got = ex.run_group(ids, base, round_index=3)
            assert np.array_equal(got, expected)

    def test_workers_without_data_keep_base(self):
        model = LogisticRegressionMLP(input_dim=64, hidden=8, num_classes=10, seed=3)
        worker_data = _make_worker_data([12, 0, 12, 0])
        ids = list(range(4))
        base = model.get_vector()
        expected = _serial_reference(model, worker_data, ids, base)
        with ProcessGroupExecutor(model, worker_data, num_processes=2, **HYPER) as ex:
            got = ex.run_group(ids, base, round_index=3)
            assert np.array_equal(got, expected)
            assert np.array_equal(got[1], base)

    def test_donated_stack_is_shared_arena_view(self):
        model = LogisticRegressionMLP(input_dim=64, hidden=8, num_classes=10, seed=3)
        worker_data = _make_worker_data([12] * 4)
        with ProcessGroupExecutor(model, worker_data, num_processes=1, **HYPER) as ex:
            base = model.get_vector()
            got = ex.run_group(list(range(4)), base, round_index=1)
            assert got is not None and got.shape == (4, model.dimension)
            assert np.shares_memory(got, ex.stack(4))
            # An explicit out buffer receives a copy instead.
            out = np.empty((4, model.dimension))
            got2 = ex.run_group(list(range(4)), base, round_index=1, out=out)
            assert got2 is out
            assert np.array_equal(out, got)


# ----------------------------------------------------------------------
# Pool-crash recovery
# ----------------------------------------------------------------------
def _kill_pool_workers(executor):
    pids = executor.worker_pids()
    assert pids, "pool has no live workers to kill"
    for pid in pids:
        os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        alive = []
        for pid in pids:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue
            alive.append(pid)
        if not alive:
            return
        time.sleep(0.05)


class TestCrashRecovery:
    def test_pool_respawn_preserves_results(self):
        model = LogisticRegressionMLP(input_dim=64, hidden=8, num_classes=10, seed=3)
        worker_data = _make_worker_data([16] * 4)
        ids = list(range(4))
        base = model.get_vector()
        expected = _serial_reference(model, worker_data, ids, base)
        with ProcessGroupExecutor(
            model, worker_data, num_processes=2, max_restarts=2, **HYPER
        ) as ex:
            first = ex.run_group(ids, base, round_index=3).copy()
            assert np.array_equal(first, expected)
            _kill_pool_workers(ex)
            second = ex.run_group(ids, base, round_index=3)
            assert np.array_equal(second, expected)
            assert ex.restarts >= 1
            assert ex.fallbacks == 0

    def test_exhausted_restarts_fall_back_in_process(self):
        model = LogisticRegressionMLP(input_dim=64, hidden=8, num_classes=10, seed=3)
        worker_data = _make_worker_data([16] * 4)
        ids = list(range(4))
        base = model.get_vector()
        expected = _serial_reference(model, worker_data, ids, base)
        with ProcessGroupExecutor(
            model, worker_data, num_processes=1, max_restarts=0, **HYPER
        ) as ex:
            ex.run_group(ids, base, round_index=3)
            _kill_pool_workers(ex)
            got = ex.run_group(ids, base, round_index=3)
            assert np.array_equal(got, expected)
            assert ex.fallbacks == 1


# ----------------------------------------------------------------------
# Lifecycle / refusal paths
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_close_is_idempotent_and_run_after_close_raises(self):
        model = LogisticRegressionMLP(input_dim=64, hidden=8, num_classes=10, seed=3)
        worker_data = _make_worker_data([12] * 2)
        ex = ProcessGroupExecutor(model, worker_data, num_processes=1, **HYPER)
        ex.close()
        ex.close()
        assert ex.closed
        with pytest.raises(RuntimeError):
            ex.run_group([0, 1], model.get_vector(), round_index=1)

    def test_active_dropout_model_is_refused(self):
        rng = np.random.default_rng(0)
        model = SequentialModel(
            [
                Dense("fc1", 16, 8, rng),
                ReLU("relu"),
                Dropout("drop", 0.5, rng),
                Dense("out", 8, 4, rng),
            ]
        )
        with pytest.raises(UnsupportedModelError):
            ProcessGroupExecutor(
                model, _make_worker_data([8], feat_shape=(16,)), **HYPER
            )

    def test_pad_to_smaller_than_batch_raises(self):
        model = LogisticRegressionMLP(input_dim=64, hidden=8, num_classes=10, seed=3)
        engine = BatchedWorkerEngine.try_build(model)
        worker_data = _make_worker_data([16])
        out = np.empty((1, model.dimension))
        with pytest.raises(ValueError, match="pad_to"):
            engine.run_group(
                [0], worker_data, model.get_vector(), 1, out=out, pad_to=2, **HYPER
            )

    def test_shared_stack_view_wraps_and_offsets(self):
        buf = bytearray(4 * 3 * 8)
        view = shared_stack_view(buf, 4, 3)
        assert view.shape == (4, 3)
        view[2, 1] = 7.0
        tail = shared_stack_view(buf, 2, 3, offset=2 * 3)
        assert tail[0, 1] == 7.0


# ----------------------------------------------------------------------
# Trainer-level equivalence (the full Air-FedGA event loop)
# ----------------------------------------------------------------------
def _run_air_fedga(config_fn, parallelism, **kwargs):
    cfg = config_fn(num_workers=8, num_train=160, image_size=8, max_rounds=10, **kwargs).scaled(
        local_steps=2,
        batch_size=16,
        eval_every=2,
        max_eval_samples=48,
        config=AirFedGAConfig(grouping=GroupingConfig(xi=1.0), parallelism=parallelism),
    )
    with build_trainer("air_fedga", build_experiment(cfg)) as trainer:
        history = trainer.run(max_rounds=5)
        return (
            trainer.global_vector.copy(),
            [(r.loss, r.accuracy, r.time) for r in history.records],
            trainer.parallelism_active,
        )


class TestTrainerEquivalence:
    @pytest.mark.parametrize("num_processes", [1, 2, 4])
    def test_air_fedga_mlp_history_bit_exact(self, num_processes):
        gv_serial, hist_serial, _ = _run_air_fedga(
            lr_mnist_config, ParallelismConfig(mode="none"), hidden=16
        )
        gv_mp, hist_mp, active = _run_air_fedga(
            lr_mnist_config,
            ParallelismConfig(mode="processes", num_processes=num_processes),
            hidden=16,
        )
        assert active
        assert np.array_equal(gv_serial, gv_mp)
        assert hist_serial == hist_mp

    def test_air_fedga_cnn_history_bit_exact(self):
        gv_serial, hist_serial, _ = _run_air_fedga(
            cnn_mnist_config, ParallelismConfig(mode="none"), scale=0.1
        )
        gv_mp, hist_mp, active = _run_air_fedga(
            cnn_mnist_config,
            ParallelismConfig(mode="processes", num_processes=2),
            scale=0.1,
        )
        assert active
        assert np.array_equal(gv_serial, gv_mp)
        assert hist_serial == hist_mp

    def test_scalar_engine_downgrades_with_warning(self, small_experiment):
        exp = small_experiment
        exp.engine = "scalar"
        exp.config.parallelism = ParallelismConfig(mode="processes")
        with build_trainer("air_fedga", exp) as trainer:
            with pytest.warns(RuntimeWarning, match="no batched engine"):
                assert trainer.parallel_executor() is None
            assert not trainer.parallelism_active

    def test_small_groups_stay_in_process(self, small_experiment):
        exp = small_experiment
        exp.config.parallelism = ParallelismConfig(
            mode="processes", min_group_size=1_000
        )
        with build_trainer("air_fedga", exp) as trainer:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                trainer.run(max_rounds=2)
            # Gated by min_group_size: no dispatch ever reached the pool.
            assert trainer._executor is None or trainer._executor.dispatches == 0


# ----------------------------------------------------------------------
# Benchmark-tier guard
# ----------------------------------------------------------------------
class TestBenchGuard:
    def test_refuses_parallelism_none(self):
        with pytest.raises(ValueError, match="serial"):
            bench_grouped_round_mp(10, parallelism="none")

    def test_refuses_silent_serial_fallback(self, monkeypatch):
        from repro.fl.base import BaseTrainer

        monkeypatch.setattr(BaseTrainer, "parallel_executor", lambda self: None)
        with pytest.raises(RuntimeError, match="mislabeled"):
            bench_grouped_round_mp(
                10, rounds_per_group=1, repeats=1, num_processes=1
            )
