"""Pipelined event-loop determinism and speculation lifecycle.

The contract under test (docs/ARCHITECTURE.md, "Pipelined event loop" and
"Determinism invariants"): with ``config.parallelism.pipeline`` the
trainer overlaps the parent's aggregation with speculative training of
the next ready group on the process pool, and the produced
``TrainingHistory`` *records* stay **bit-identical in float64** to the
serial event loop — for MLP and CNN models, for ragged groups, and even
when speculations are invalidated and recomputed.  The speculation
counters (``pipeline_hits`` / ``pipeline_recomputes``) are execution
statistics outside the determinism contract.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.core import AirFedGAConfig, GroupingConfig, ParallelismConfig
from repro.experiments.bench import bench_grouped_round_pipeline
from repro.experiments.configs import cnn_mnist_config, lr_mnist_config
from repro.experiments.runner import build_experiment
from repro.fl.air_fedga import AirFedGATrainer
from repro.fl.registry import build_trainer
from repro.nn.models import LogisticRegressionMLP
from repro.parallel import ProcessGroupExecutor


def _record_trace(history):
    """The simulated per-round quantities the determinism contract covers."""
    return [
        (r.round_index, r.time, r.loss, r.accuracy, r.staleness, r.group_id,
         r.round_energy_j, r.sigma, r.eta)
        for r in history.records
    ]


def _run_air_fedga(config_fn, parallelism, *, num_groups=3, rounds=10, **kwargs):
    cfg = config_fn(
        num_workers=12, num_train=240, image_size=8, max_rounds=40, **kwargs
    ).scaled(
        local_steps=2,
        batch_size=16,
        eval_every=1,
        max_eval_samples=48,
        config=AirFedGAConfig(
            grouping=GroupingConfig(xi=1.0), parallelism=parallelism
        ),
    )
    with build_trainer(
        "air_fedga",
        build_experiment(cfg),
        grouping_strategy="tier",
        num_groups=num_groups,
    ) as trainer:
        history = trainer.run(max_rounds=rounds)
        return trainer.global_vector.copy(), _record_trace(history), history


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------
class TestPipelineConfig:
    def test_pipeline_requires_processes_mode(self):
        with pytest.raises(ValueError, match="pipeline=True requires mode='processes'"):
            ParallelismConfig(mode="none", pipeline=True)

    def test_pipeline_requires_two_inflight_slots(self):
        with pytest.raises(ValueError, match="max_inflight >= 2"):
            ParallelismConfig(mode="processes", pipeline=True, max_inflight=1)

    def test_max_inflight_validated(self):
        with pytest.raises(ValueError, match="max_inflight"):
            ParallelismConfig(max_inflight=0)

    def test_valid_pipeline_config(self):
        par = ParallelismConfig(mode="processes", pipeline=True)
        assert par.max_inflight == 2


# ----------------------------------------------------------------------
# Executor-level async dispatch
# ----------------------------------------------------------------------
class TestSubmitGroup:
    HYPER = dict(learning_rate=0.2, local_steps=2, batch_size=16, seed=11)

    def _model_and_data(self):
        model = LogisticRegressionMLP(input_dim=64, hidden=8, num_classes=10, seed=3)
        rng = np.random.default_rng(0)
        data = [
            (rng.standard_normal((20, 64)), rng.integers(0, 10, 20))
            for _ in range(6)
        ]
        return model, data

    def test_future_result_matches_run_group(self):
        model, data = self._model_and_data()
        base = model.get_vector()
        with ProcessGroupExecutor(
            model, data, num_processes=2, num_slots=2, **self.HYPER
        ) as ex:
            expected = ex.run_group([0, 1, 2], base, round_index=3).copy()
            fut = ex.submit_group([0, 1, 2], base, round_index=3)
            assert np.array_equal(fut.result(), expected)
            fut.release()

    def test_two_slots_coexist(self):
        # The pipelined loop's core requirement: the committing group's
        # stack and the speculative group's stack live in different arena
        # slots, so neither dispatch overwrites the other.
        model, data = self._model_and_data()
        base = model.get_vector()
        with ProcessGroupExecutor(
            model, data, num_processes=2, num_slots=2, **self.HYPER
        ) as ex:
            exp_a = ex.run_group([0, 1, 2], base, round_index=1).copy()
            exp_b = ex.run_group([3, 4, 5], base, round_index=2).copy()
            fut_a = ex.submit_group([0, 1, 2], base, round_index=1)
            fut_b = ex.submit_group([3, 4, 5], base, round_index=2)
            got_a = fut_a.result()
            got_b = fut_b.result()
            assert fut_a.slot != fut_b.slot
            assert np.array_equal(got_a, exp_a)
            assert np.array_equal(got_b, exp_b)
            fut_a.release()
            fut_b.release()

    def test_base_copied_at_submit_time(self):
        # Speculation safety: the caller may mutate its base vector (e.g.
        # commit a new global model) after submit without affecting the
        # in-flight dispatch.
        model, data = self._model_and_data()
        base = model.get_vector()
        with ProcessGroupExecutor(
            model, data, num_processes=1, num_slots=2, **self.HYPER
        ) as ex:
            expected = ex.run_group([0, 1], base, round_index=1).copy()
            scratch = base.copy()
            fut = ex.submit_group([0, 1], scratch, round_index=1)
            scratch[:] = 1e9  # caller-side mutation after submit
            assert np.array_equal(fut.result(), expected)
            fut.release()

    def test_slot_exhaustion_raises_and_release_recovers(self):
        model, data = self._model_and_data()
        base = model.get_vector()
        with ProcessGroupExecutor(
            model, data, num_processes=1, num_slots=1, **self.HYPER
        ) as ex:
            fut = ex.submit_group([0, 1], base, round_index=1)
            with pytest.raises(RuntimeError, match="free arena slot"):
                ex.submit_group([2, 3], base, round_index=1)
            fut.result()
            fut.release()
            fut2 = ex.submit_group([2, 3], base, round_index=1)
            fut2.discard()

    def test_discard_is_idempotent_and_frees_slot(self):
        model, data = self._model_and_data()
        base = model.get_vector()
        with ProcessGroupExecutor(
            model, data, num_processes=1, num_slots=1, **self.HYPER
        ) as ex:
            fut = ex.submit_group([0, 1], base, round_index=1)
            fut.discard()
            fut.discard()
            assert ex.free_slots == 1


# ----------------------------------------------------------------------
# Trainer-level determinism (the full pipelined Air-FedGA event loop)
# ----------------------------------------------------------------------
class TestPipelinedTrainerEquivalence:
    def test_mlp_history_bit_exact_with_hits(self):
        gv_serial, trace_serial, _ = _run_air_fedga(
            lr_mnist_config, ParallelismConfig(mode="none"), hidden=16
        )
        gv_pipe, trace_pipe, history = _run_air_fedga(
            lr_mnist_config,
            ParallelismConfig(mode="processes", num_processes=2, pipeline=True),
            hidden=16,
        )
        assert np.array_equal(gv_serial, gv_pipe)
        assert trace_serial == trace_pipe
        # With several same-speed tier groups the lookahead is exact:
        # speculation engages and never needs a recompute.
        assert history.pipeline_hits > 0
        assert history.pipeline_recomputes == 0

    def test_cnn_history_bit_exact(self):
        gv_serial, trace_serial, _ = _run_air_fedga(
            cnn_mnist_config, ParallelismConfig(mode="none"),
            num_groups=2, rounds=6, scale=0.1,
        )
        gv_pipe, trace_pipe, history = _run_air_fedga(
            cnn_mnist_config,
            ParallelismConfig(mode="processes", num_processes=2, pipeline=True),
            num_groups=2, rounds=6, scale=0.1,
        )
        assert np.array_equal(gv_serial, gv_pipe)
        assert trace_serial == trace_pipe
        assert history.pipeline_hits > 0

    def test_ragged_groups_bit_exact(self):
        # Label-skew partition with greedy ξ = 0.3 grouping: group sizes and
        # per-worker batch geometries both vary, exercising the pad_to pin
        # through the speculative dispatch path.
        def run(par):
            cfg = lr_mnist_config(
                num_workers=10, num_train=190, image_size=8, hidden=16,
                max_rounds=40,
            ).scaled(
                local_steps=2, batch_size=16, eval_every=1, max_eval_samples=48,
                partition_strategy="label-skew",
                config=AirFedGAConfig(
                    grouping=GroupingConfig(xi=0.3), parallelism=par
                ),
            )
            with build_trainer("air_fedga", build_experiment(cfg)) as trainer:
                assert len(trainer.groups) > 1
                history = trainer.run(max_rounds=8)
                return trainer.global_vector.copy(), _record_trace(history), history

        gv_serial, trace_serial, _ = run(ParallelismConfig(mode="none"))
        gv_pipe, trace_pipe, history = run(
            ParallelismConfig(
                mode="processes", num_processes=2, pipeline=True,
                min_group_size=1,
            )
        )
        assert np.array_equal(gv_serial, gv_pipe)
        assert trace_serial == trace_pipe
        assert history.pipeline_hits > 0

    def test_pipeline_counters_serialize_and_round_trip(self):
        _, _, history = _run_air_fedga(
            lr_mnist_config,
            ParallelismConfig(mode="processes", num_processes=2, pipeline=True),
            hidden=16, rounds=6,
        )
        data = history.to_dict()
        assert data["pipeline_hits"] == history.pipeline_hits
        from repro.fl.history import TrainingHistory

        back = TrainingHistory.from_dict(data)
        assert back.pipeline_hits == history.pipeline_hits
        assert back.pipeline_recomputes == history.pipeline_recomputes


# ----------------------------------------------------------------------
# Speculation invalidation (the recompute fallback)
# ----------------------------------------------------------------------
class _LooseLookaheadTrainer(AirFedGATrainer):
    """Deliberately imperfect lookahead: always speculate on the heap head,
    even when the committing group re-enters the queue first.  Models a
    subclass with a stateful/non-deterministic timing override, for which
    the commit-time validation is the only safety net."""

    def pipeline_lookahead(self, queue, reentry):
        return queue[0][1] if queue else None


class TestSpeculationInvalidation:
    def _experiment(self, par):
        # A strongly heterogeneous population (κ up to 60) with tiny greedy
        # groups: the fastest group laps the slower ones, so the head of
        # the queue is *not* always the next pop and loose speculation gets
        # invalidated by the interleaving commit.
        cfg = lr_mnist_config(
            num_workers=8, num_train=160, image_size=8, hidden=16,
            max_rounds=40,
        ).scaled(
            local_steps=2, batch_size=16, eval_every=1, max_eval_samples=48,
            base_local_time=40.0, kappa_min=1.0, kappa_max=60.0,
            config=AirFedGAConfig(
                grouping=GroupingConfig(xi=0.1), parallelism=par
            ),
        )
        return build_experiment(cfg)

    def test_invalidated_speculation_recomputes_in_event_order(self):
        with AirFedGATrainer(
            self._experiment(ParallelismConfig(mode="none"))
        ) as serial:
            serial_history = serial.run(max_rounds=15)
            gv_serial = serial.global_vector.copy()
        with _LooseLookaheadTrainer(
            self._experiment(
                ParallelismConfig(
                    mode="processes", num_processes=2, pipeline=True,
                    min_group_size=1,
                )
            )
        ) as pipe:
            pipe_history = pipe.run(max_rounds=15)
            gv_pipe = pipe.global_vector.copy()
        # The loose lookahead must have been wrong at least once...
        assert pipe_history.pipeline_recomputes > 0
        assert pipe_history.pipeline_hits > 0
        # ...and the recompute fallback restored event order exactly.
        assert np.array_equal(gv_serial, gv_pipe)
        assert _record_trace(serial_history) == _record_trace(pipe_history)

    def test_exact_lookahead_skips_doomed_speculation(self):
        # The default lookahead sees the re-entry sorting before the head
        # and skips speculation instead of wasting a dispatch.
        with AirFedGATrainer(
            self._experiment(
                ParallelismConfig(
                    mode="processes", num_processes=2, pipeline=True,
                    min_group_size=1,
                )
            )
        ) as trainer:
            history = trainer.run(max_rounds=15)
            assert history.pipeline_recomputes == 0
            assert history.pipeline_hits > 0


# ----------------------------------------------------------------------
# Pool-crash recovery while a speculation is in flight
# ----------------------------------------------------------------------
def _kill_pool_workers(executor):
    pids = executor.worker_pids()
    assert pids, "pool has no live workers to kill"
    for pid in pids:
        os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        alive = []
        for pid in pids:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue
            alive.append(pid)
        if not alive:
            return
        time.sleep(0.05)


class _MidSpeculationCrashTrainer(AirFedGATrainer):
    """Kills every pool worker during one round's aggregation — i.e. while
    the *next* group's speculative dispatch is already in flight on the
    pool.  Models an OOM-killed worker at the worst possible moment."""

    CRASH_ROUND = 4

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._crashed = False

    def aggregate_group(self, group_id, member_ids, local_vectors, round_index,
                        weight_scale=1.0):
        if (
            not self._crashed
            and round_index == self.CRASH_ROUND
            and self._executor is not None
        ):
            self._crashed = True
            _kill_pool_workers(self._executor)
        return super().aggregate_group(
            group_id, member_ids, local_vectors, round_index,
            weight_scale=weight_scale,
        )


@pytest.mark.chaos
class TestCrashDuringSpeculation:
    def _experiment(self, par):
        cfg = lr_mnist_config(
            num_workers=12, num_train=240, image_size=8, hidden=16,
            max_rounds=40,
        ).scaled(
            local_steps=2, batch_size=16, eval_every=1, max_eval_samples=48,
            config=AirFedGAConfig(
                grouping=GroupingConfig(xi=1.0), parallelism=par
            ),
        )
        return build_experiment(cfg)

    def test_killed_pool_mid_speculation_keeps_history_bit_exact(self):
        with AirFedGATrainer(
            self._experiment(ParallelismConfig(mode="none")),
            grouping_strategy="tier", num_groups=3,
        ) as serial:
            serial_history = serial.run(max_rounds=10)
            gv_serial = serial.global_vector.copy()

        with _MidSpeculationCrashTrainer(
            self._experiment(
                ParallelismConfig(mode="processes", num_processes=2, pipeline=True)
            ),
            grouping_strategy="tier", num_groups=3,
        ) as chaos:
            chaos_history = chaos.run(max_rounds=10)
            gv_chaos = chaos.global_vector.copy()
            executor = chaos._executor
            # The kill really happened and recovery really engaged: the
            # in-flight speculative dispatch hit the broken pool and was
            # respawn-resubmitted (or re-run on the in-process fallback).
            assert chaos._crashed
            assert executor.restarts >= 1 or executor.fallbacks >= 1

        # The speculation machinery stayed live and the produced history is
        # bit-identical to the serial event loop despite the crash.
        assert chaos_history.pipeline_hits > 0
        assert np.array_equal(gv_serial, gv_chaos)
        assert _record_trace(serial_history) == _record_trace(chaos_history)


# ----------------------------------------------------------------------
# Benchmark-tier guard
# ----------------------------------------------------------------------
class TestPipelineBenchGuard:
    def test_refuses_parallelism_none(self):
        with pytest.raises(ValueError, match="serial"):
            bench_grouped_round_pipeline(10, parallelism="none")

    def test_refuses_silent_serial_fallback(self, monkeypatch):
        from repro.fl.base import BaseTrainer

        monkeypatch.setattr(BaseTrainer, "parallel_executor", lambda self: None)
        with pytest.raises(RuntimeError, match="mislabeled"):
            bench_grouped_round_pipeline(
                10, rounds_per_group=1, repeats=1, num_processes=1
            )
