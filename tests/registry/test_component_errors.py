"""The legacy entry points now share UnknownComponentError + kwargs checks."""

import pytest

from repro.channel.fading import build_channel
from repro.data.partition import make_partition
from repro.data.synthetic import load_dataset, make_mnist_like
from repro.experiments.configs import lr_mnist_config
from repro.experiments.runner import build_experiment
from repro.fl.registry import build_trainer
from repro.nn.models import build_model
from repro.registry import UnknownComponentError


class TestBuildTrainerErrors:
    def test_unknown_mechanism_suggests_close_match(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            build_trainer("air_fedag", None)
        message = str(excinfo.value)
        assert "unknown mechanism 'air_fedag'" in message
        assert "did you mean" in message
        assert "air_fedga" in excinfo.value.suggestions

    def test_unknown_mechanism_is_still_a_keyerror(self):
        with pytest.raises(KeyError, match="unknown mechanism"):
            build_trainer("fedsgd", None)

    def test_unknown_kwarg_raises_typeerror_with_accepted_params(self):
        with pytest.raises(TypeError) as excinfo:
            build_trainer("air_fedga", None, grouping="greedy")
        message = str(excinfo.value)
        assert "mechanism 'air_fedga'" in message
        assert "'grouping'" in message
        # The full accepted parameter list is spelled out.
        assert "grouping_strategy" in message
        assert "num_groups" in message
        assert "staleness_exponent" in message

    def test_unknown_kwarg_never_reaches_the_trainer(self):
        # TiFL's num_tiers is not an Air-FedGA parameter.
        with pytest.raises(TypeError, match="accepted parameters"):
            build_trainer("air_fedga", None, num_tiers=3)

    def test_valid_kwargs_still_forwarded(self, small_experiment):
        trainer = build_trainer("tifl", small_experiment, num_tiers=2)
        assert trainer.num_tiers == 2


class TestPartitionErrors:
    def test_runner_build_partition_suggests_close_match(self):
        config = lr_mnist_config(num_workers=4, num_train=60, image_size=8)
        config = config.scaled(partition_strategy="dirichlet ")
        with pytest.raises(UnknownComponentError) as excinfo:
            build_experiment(config)
        message = str(excinfo.value)
        assert "unknown partition strategy" in message
        assert "did you mean 'dirichlet'" in message

    def test_make_partition_unknown_strategy(self):
        dataset = make_mnist_like(num_train=40, num_test=10, image_size=8)
        with pytest.raises(KeyError, match="unknown partition strategy"):
            make_partition("sorted", dataset, num_workers=2)


class TestOtherFamilies:
    def test_build_channel_unknown_kind(self):
        with pytest.raises(UnknownComponentError, match="unknown channel kind"):
            build_channel("mmwave", num_workers=4)

    def test_load_dataset_unknown_name(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            load_dataset("synthetic-mnst")
        assert "did you mean 'synthetic-mnist'" in str(excinfo.value)

    def test_build_model_unknown_name(self):
        with pytest.raises(UnknownComponentError, match="unknown model"):
            build_model("vgg16")
