"""Tests for the generic component registry (repro.registry)."""

import pytest

from repro import registry
from repro.registry import (
    COMPONENT_KINDS,
    UnknownComponentError,
    accepted_parameters,
    check_kwargs,
    register,
)


class TestPopulation:
    def test_standard_kinds_are_populated(self):
        assert set(COMPONENT_KINDS) <= set(registry.kinds())

    def test_standard_names(self):
        assert registry.names("mechanism") == [
            "air_fedavg", "air_fedga", "dynamic", "fedasync", "fedavg",
            "feddyn", "fedprox", "tifl",
        ]
        assert registry.names("partitioner") == ["dirichlet", "iid", "label-skew"]
        assert registry.names("channel") == ["rayleigh", "static"]
        assert registry.names("latency") == ["homogeneous", "uniform"]
        assert registry.names("dataset") == [
            "synthetic-cifar10", "synthetic-imagenet100", "synthetic-mnist",
        ]
        assert registry.names("model") == ["cifar_cnn", "lr", "mini_vgg", "mnist_cnn"]

    def test_as_dict_is_a_snapshot(self):
        snapshot = registry.as_dict("mechanism")
        snapshot["bogus"] = object()
        assert "bogus" not in registry.names("mechanism")

    def test_unknown_kind_has_no_names(self):
        assert registry.names("nonexistent-kind") == []


class TestRegisterAndLookup:
    def test_round_trip_custom_kind(self):
        @register("test-kind", "widget")
        def make_widget(size=1):
            return ("widget", size)

        assert registry.get("test-kind", "widget") is make_widget
        assert registry.create("test-kind", "widget", size=3) == ("widget", 3)

    def test_duplicate_registration_rejected(self):
        @register("test-kind", "dup")
        def first():
            pass

        with pytest.raises(ValueError, match="already registered"):
            @register("test-kind", "dup")
            def second():
                pass

    def test_overwrite_allowed_when_requested(self):
        @register("test-kind", "shadow")
        def first():
            return 1

        @register("test-kind", "shadow", overwrite=True)
        def second():
            return 2

        assert registry.create("test-kind", "shadow") == 2

    def test_bad_kind_or_name_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            register("", "x")
        with pytest.raises(ValueError, match="name"):
            register("test-kind", "")


class TestUnknownComponentError:
    def test_is_a_keyerror(self):
        with pytest.raises(KeyError):
            registry.get("mechanism", "fedsgd")

    def test_message_carries_suggestions(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            registry.get("mechanism", "air_fedgaa")
        message = str(excinfo.value)
        assert "unknown mechanism 'air_fedgaa'" in message
        assert "did you mean 'air_fedga'" in message
        assert "available:" in message
        assert excinfo.value.suggestions[0] == "air_fedga"
        assert excinfo.value.kind == "mechanism"
        assert excinfo.value.name == "air_fedgaa"

    def test_no_suggestions_for_distant_name(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            registry.get("mechanism", "zzzz")
        assert excinfo.value.suggestions == []
        assert "did you mean" not in str(excinfo.value)

    def test_kind_labels_keep_legacy_wording(self):
        with pytest.raises(KeyError, match="unknown partition strategy"):
            registry.get("partitioner", "sorted")
        with pytest.raises(KeyError, match="unknown channel kind"):
            registry.get("channel", "mmwave")


class TestKwargsChecking:
    def test_accepted_parameters_excludes_self_and_excluded(self):
        class Thing:
            def __init__(self, experiment, alpha=1, *, beta=2):
                pass

        names, has_var_kw = accepted_parameters(Thing, exclude=("experiment",))
        assert names == ["alpha", "beta"]
        assert not has_var_kw

    def test_check_kwargs_passes_known_names(self):
        class Thing:
            def __init__(self, alpha=1):
                pass

        check_kwargs(Thing, {"alpha": 3}, context="thing")

    def test_check_kwargs_rejects_unknown_names(self):
        class Thing:
            def __init__(self, alpha=1, beta=2):
                pass

        with pytest.raises(TypeError, match="accepted parameters"):
            check_kwargs(Thing, {"alpah": 3}, context="thing")

    def test_var_keyword_factories_accept_anything(self):
        def factory(**kwargs):
            return kwargs

        check_kwargs(factory, {"anything": 1}, context="factory")
