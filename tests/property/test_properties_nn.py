"""Property-based tests for the NumPy neural-network substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import (
    Parameter,
    ParameterSet,
    accuracy,
    flatten_parameters,
    log_softmax,
    softmax,
    softmax_cross_entropy,
    unflatten_vector,
)


finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def array_shapes_and_values(draw, max_arrays=4):
    """A list of small arrays with arbitrary shapes and finite values."""
    n = draw(st.integers(1, max_arrays))
    arrays = []
    for _ in range(n):
        shape = tuple(draw(st.lists(st.integers(1, 4), min_size=1, max_size=3)))
        arr = draw(
            hnp.arrays(dtype=np.float64, shape=shape, elements=finite_floats)
        )
        arrays.append(arr)
    return arrays


class TestFlattenRoundtrip:
    @given(arrays=array_shapes_and_values())
    @settings(max_examples=60, deadline=None)
    def test_flatten_unflatten_roundtrip(self, arrays):
        """unflatten(flatten(x)) == x for any collection of tensors."""
        vec = flatten_parameters(arrays)
        assert vec.ndim == 1
        assert vec.size == sum(a.size for a in arrays)
        blocks = unflatten_vector(vec, [a.shape for a in arrays])
        for original, block in zip(arrays, blocks):
            np.testing.assert_array_equal(original, block)

    @given(arrays=array_shapes_and_values())
    @settings(max_examples=30, deadline=None)
    def test_parameter_set_roundtrip(self, arrays):
        ps = ParameterSet(
            [Parameter(f"p{i}", a) for i, a in enumerate(arrays)]
        )
        vec = ps.to_vector()
        ps.from_vector(vec * 2.0)
        np.testing.assert_allclose(ps.to_vector(), vec * 2.0)


class TestSoftmaxProperties:
    @given(
        logits=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(2, 6)),
            elements=st.floats(-50, 50, allow_nan=False),
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_softmax_is_probability_distribution(self, logits):
        probs = softmax(logits)
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    @given(
        logits=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(2, 6)),
            elements=st.floats(-50, 50, allow_nan=False),
        ),
        shift=st.floats(-100, 100, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_softmax_shift_invariance(self, logits, shift):
        np.testing.assert_allclose(
            softmax(logits), softmax(logits + shift), atol=1e-9
        )

    @given(
        logits=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 5), st.integers(2, 5)),
            elements=st.floats(-30, 30, allow_nan=False),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_log_softmax_is_nonpositive(self, logits):
        assert np.all(log_softmax(logits) <= 1e-12)


class TestCrossEntropyProperties:
    @given(
        logits=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(2, 5)),
            elements=st.floats(-20, 20, allow_nan=False),
        ),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_loss_nonnegative_and_gradient_balanced(self, logits, data):
        n, k = logits.shape
        labels = np.array(
            [data.draw(st.integers(0, k - 1)) for _ in range(n)], dtype=int
        )
        loss, grad = softmax_cross_entropy(logits, labels)
        assert loss >= 0.0
        # Gradient rows sum to zero (softmax minus one-hot).
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-9)
        assert grad.shape == logits.shape

    @given(
        logits=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(2, 5)),
            elements=st.floats(-20, 20, allow_nan=False),
        ),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_accuracy_bounds(self, logits, data):
        n, k = logits.shape
        labels = np.array(
            [data.draw(st.integers(0, k - 1)) for _ in range(n)], dtype=int
        )
        acc = accuracy(logits, labels)
        assert 0.0 <= acc <= 1.0
