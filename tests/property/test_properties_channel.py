"""Property-based tests for the wireless channel substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.channel import (
    aggregation_error_term,
    aircomp_aggregate,
    ideal_group_average,
    transmit_energy,
)


positive = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)
model_values = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


@st.composite
def group_of_models(draw, max_workers=5, max_dim=8):
    n = draw(st.integers(1, max_workers))
    dim = draw(st.integers(1, max_dim))
    models = [
        draw(hnp.arrays(dtype=np.float64, shape=(dim,), elements=model_values))
        for _ in range(n)
    ]
    sizes = [draw(positive) for _ in range(n)]
    gains = [draw(positive) for _ in range(n)]
    return models, sizes, gains


class TestAirCompProperties:
    @given(group=group_of_models(), sigma=positive)
    @settings(max_examples=80, deadline=None)
    def test_noiseless_matched_aggregation_is_exact(self, group, sigma):
        """With z=0 and σ=√η, over-the-air aggregation equals the ideal average."""
        models, sizes, gains = group
        result = aircomp_aggregate(
            models, sizes, gains, sigma_t=sigma, eta_t=sigma**2,
            noise_std=0.0, rng=np.random.default_rng(0),
        )
        expected = ideal_group_average(models, sizes)
        np.testing.assert_allclose(result.estimate, expected, rtol=1e-9, atol=1e-9)

    @given(group=group_of_models(), sigma=positive, eta=positive)
    @settings(max_examples=60, deadline=None)
    def test_energies_match_closed_form(self, group, sigma, eta):
        models, sizes, gains = group
        result = aircomp_aggregate(
            models, sizes, gains, sigma_t=sigma, eta_t=eta,
            noise_std=0.0, rng=np.random.default_rng(0),
        )
        for i, (w, d, h) in enumerate(zip(models, sizes, gains)):
            expected = transmit_energy(w, d, h, sigma)
            assert result.transmit_energies[i] == pytest.approx(expected, rel=1e-9)

    @given(group=group_of_models(), sigma=positive, eta=positive)
    @settings(max_examples=60, deadline=None)
    def test_received_signal_linear_in_models(self, group, sigma, eta):
        """Doubling every local model doubles the noiseless received signal."""
        models, sizes, gains = group
        kwargs = dict(
            data_sizes=sizes, channel_gains=gains, sigma_t=sigma, eta_t=eta,
            noise_std=0.0, rng=np.random.default_rng(0),
        )
        once = aircomp_aggregate(models, **kwargs)
        twice = aircomp_aggregate([2 * m for m in models], **kwargs)
        np.testing.assert_allclose(twice.received, 2 * once.received, rtol=1e-9, atol=1e-12)

    @given(
        sigma=positive, eta=positive, bound=positive,
        noise=st.floats(0.0, 10.0, allow_nan=False), size=positive,
    )
    @settings(max_examples=80, deadline=None)
    def test_error_term_nonnegative(self, sigma, eta, bound, noise, size):
        assert aggregation_error_term(sigma, eta, bound, noise, size) >= 0.0

    @given(sigma=positive, bound=positive, noise=positive, size=positive)
    @settings(max_examples=60, deadline=None)
    def test_error_term_zero_iff_matched_and_noiseless(self, sigma, bound, noise, size):
        matched_noiseless = aggregation_error_term(sigma, sigma**2, bound, 0.0, size)
        assert matched_noiseless == pytest.approx(0.0, abs=1e-18)
        with_noise = aggregation_error_term(sigma, sigma**2, bound, noise, size)
        assert with_noise > 0.0
