"""Property-based tests for dataset partitioning and EMD statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    average_emd,
    emd,
    group_emds,
    make_mnist_like,
    partition_dirichlet,
    partition_iid,
    partition_label_skew,
)


# A single module-level dataset keeps the property tests fast.
DATASET = make_mnist_like(num_train=300, num_test=30, image_size=8, seed=99)


class TestPartitionProperties:
    @given(
        num_workers=st.integers(1, 40),
        strategy=st.sampled_from(["iid", "label-skew"]),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_covers_dataset_exactly_once(self, num_workers, strategy, seed):
        if strategy == "iid":
            part = partition_iid(DATASET, num_workers, seed=seed)
        else:
            part = partition_label_skew(DATASET, num_workers, seed=seed)
        all_idx = np.concatenate([ix for ix in part.indices if ix.size]) if part.num_workers else np.array([])
        # No duplicates, no out-of-range indices, full coverage.
        assert len(np.unique(all_idx)) == len(all_idx)
        assert all_idx.min() >= 0 and all_idx.max() < DATASET.num_train
        assert len(all_idx) == DATASET.num_train
        part.validate()

    @given(num_workers=st.integers(2, 20), alpha=st.floats(0.2, 10.0), seed=st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_dirichlet_partition_valid(self, num_workers, alpha, seed):
        part = partition_dirichlet(DATASET, num_workers, alpha=alpha, seed=seed)
        part.validate()
        assert part.total_size == DATASET.num_train

    @given(num_workers=st.integers(1, 30), seed=st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_proportions_and_distributions_normalized(self, num_workers, seed):
        part = partition_label_skew(DATASET, num_workers, seed=seed)
        assert part.proportions().sum() == pytest.approx(1.0)
        np.testing.assert_allclose(part.class_distribution().sum(axis=1), 1.0)
        assert part.global_distribution().sum() == pytest.approx(1.0)


distributions = st.lists(
    st.floats(0.0, 1.0, allow_nan=False), min_size=2, max_size=12
).filter(lambda xs: sum(xs) > 1e-6)


class TestEMDProperties:
    @given(p=distributions, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_emd_bounds_and_identity(self, p, data):
        q = data.draw(
            st.lists(
                st.floats(0.0, 1.0, allow_nan=False),
                min_size=len(p), max_size=len(p),
            ).filter(lambda xs: sum(xs) > 1e-6)
        )
        value = emd(np.array(p), np.array(q))
        assert 0.0 <= value <= 2.0 + 1e-12
        assert emd(np.array(p), np.array(p)) == pytest.approx(0.0)

    @given(p=distributions, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_emd_symmetry(self, p, data):
        q = data.draw(
            st.lists(
                st.floats(0.0, 1.0, allow_nan=False),
                min_size=len(p), max_size=len(p),
            ).filter(lambda xs: sum(xs) > 1e-6)
        )
        assert emd(np.array(p), np.array(q)) == pytest.approx(
            emd(np.array(q), np.array(p))
        )

    @given(num_workers=st.integers(2, 24), seed=st.integers(0, 6), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_group_emds_within_bounds_for_random_groupings(
        self, num_workers, seed, data
    ):
        part = partition_label_skew(DATASET, num_workers, seed=seed)
        # Draw a random assignment of workers into up to 4 groups.
        num_groups = data.draw(st.integers(1, min(4, num_workers)))
        assignment = [
            data.draw(st.integers(0, num_groups - 1)) for _ in range(num_workers)
        ]
        groups = [
            [w for w, g in enumerate(assignment) if g == gid]
            for gid in range(num_groups)
        ]
        groups = [g for g in groups if g]
        values = group_emds(part, groups)
        assert np.all(values >= 0.0)
        assert np.all(values <= 2.0 + 1e-12)
        assert 0.0 <= average_emd(part, groups) <= 2.0 + 1e-12

    @given(num_workers=st.integers(2, 20), seed=st.integers(0, 6))
    @settings(max_examples=30, deadline=None)
    def test_single_group_has_zero_emd(self, num_workers, seed):
        """Grouping everyone together always matches the global distribution."""
        part = partition_label_skew(DATASET, num_workers, seed=seed)
        assert average_emd(part, [list(range(num_workers))]) == pytest.approx(0.0)
