"""Property-based tests for trainer-level aggregation invariants.

The survivor-renormalization contract of the fault layer: when a dropout
mask removes workers from a round, scaling the survivors' weights by
``Σα_all / Σα_survivors`` restores the full population's data mass — the
scaled weights sum to ``Σα_all`` under *any* non-empty dropout mask, and
the renormalized aggregate of a common update vector lands exactly where
the full population's aggregate would, independent of which workers
survived.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st


@st.composite
def alphas_and_mask(draw, max_workers=32):
    """Normalized positive weights plus a non-empty survivor mask."""
    n = draw(st.integers(2, max_workers))
    raw = draw(
        st.lists(
            st.floats(1e-3, 1e3, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    sizes = np.asarray(raw, dtype=np.float64)
    alphas = sizes / sizes.sum()
    mask = np.array(
        draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    assume(mask.any())
    return alphas, mask


class TestSurvivorRenormalization:
    @given(data=alphas_and_mask())
    @settings(max_examples=200, deadline=None)
    def test_scaled_survivor_weights_preserve_alpha_mass(self, data):
        """Σ(α_i · scale) over survivors == Σα over everyone, for any mask."""
        alphas, mask = data
        survivors = np.flatnonzero(mask)
        # The trainer's formula (BaseTrainer.sync_round_participants /
        # the grouped event loop's degraded aggregation).
        scale = float(alphas.sum()) / float(alphas[survivors].sum())
        mass = float((alphas[survivors] * scale).sum())
        assert mass == pytest.approx(float(alphas.sum()), rel=1e-9)

    @given(
        data=alphas_and_mask(max_workers=16),
        dim=st.integers(1, 8),
        step=st.floats(-2.0, 2.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_renormalized_common_update_is_mask_independent(
        self, data, dim, step
    ):
        """If every survivor returns w_base + s·u, the renormalized
        aggregate equals the full-participation aggregate — no matter who
        dropped out."""
        alphas, mask = data
        survivors = np.flatnonzero(mask)
        rng = np.random.default_rng(0)
        base = rng.standard_normal(dim)
        direction = rng.standard_normal(dim)
        update = base + step * direction
        scale = float(alphas.sum()) / float(alphas[survivors].sum())
        # Eq. 8 with renormalized survivor weights.
        coeff = float((alphas[survivors] * scale).sum())
        degraded = (1.0 - coeff) * base + coeff * update
        full = (1.0 - float(alphas.sum())) * base + float(alphas.sum()) * update
        np.testing.assert_allclose(degraded, full, rtol=1e-9, atol=1e-9)
