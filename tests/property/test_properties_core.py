"""Property-based tests for the core algorithms (convergence, power control, protocol)."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.channel import aggregation_error_term
from repro.core import (
    AirCompConfig,
    ConvergenceConfig,
    GroupAsyncScheduler,
    lemma1_decay,
    lemma1_residual,
    rounds_to_epsilon,
    solve_power_control,
    theorem1_delta,
    theorem1_rho,
)


class TestLemma1Properties:
    @given(
        x=st.floats(0.0, 0.95, allow_nan=False),
        y=st.floats(0.0, 0.95, allow_nan=False),
        z=st.floats(0.0, 10.0, allow_nan=False),
        tau=st.integers(0, 20),
        q0=st.floats(0.0, 100.0, allow_nan=False),
        steps=st.integers(1, 80),
    )
    @settings(max_examples=100, deadline=None)
    def test_bound_dominates_recursion(self, x, y, z, tau, q0, steps):
        """ρ^t Q(0) + δ upper-bounds any sequence with Q(t) ≤ xQ(t-1)+yQ(l_t)+z."""
        assume(x + y < 0.999)
        rho = lemma1_decay(x, y, tau)
        delta = lemma1_residual(x, y, z)
        q = [q0]
        rng = np.random.default_rng(0)
        for t in range(1, steps + 1):
            lt = int(rng.integers(max(0, t - 1 - tau), t))
            q.append(x * q[t - 1] + y * q[lt] + z)
        bound = [rho**t * q0 + delta for t in range(steps + 1)]
        assert all(qi <= bi + 1e-7 * max(1.0, abs(bi)) for qi, bi in zip(q, bound))

    @given(
        x=st.floats(0.0, 0.9, allow_nan=False),
        y=st.floats(0.0, 0.9, allow_nan=False),
        tau_small=st.integers(0, 5),
        tau_big=st.integers(6, 30),
    )
    @settings(max_examples=60, deadline=None)
    def test_decay_monotone_in_staleness(self, x, y, tau_small, tau_big):
        assume(0 < x + y < 0.999)
        assert lemma1_decay(x, y, tau_big) >= lemma1_decay(x, y, tau_small)


@st.composite
def group_structure(draw, max_groups=5):
    m = draw(st.integers(1, max_groups))
    raw_psi = [draw(st.floats(0.05, 1.0)) for _ in range(m)]
    psi = np.array(raw_psi) / np.sum(raw_psi)
    beta_raw = [draw(st.floats(0.05, 1.0)) for _ in range(m)]
    beta = np.array(beta_raw) / np.sum(beta_raw)
    lambdas = np.array([draw(st.floats(0.0, 1.8)) for _ in range(m)])
    return psi, beta, lambdas


class TestTheorem1Properties:
    @given(groups=group_structure(), tau=st.floats(0.0, 20.0))
    @settings(max_examples=80, deadline=None)
    def test_rho_in_unit_interval(self, groups, tau):
        psi, beta, _ = groups
        cfg = ConvergenceConfig()
        rho = theorem1_rho(cfg, psi, beta, tau)
        assert 0.0 < rho < 1.0

    @given(groups=group_structure(), c=st.floats(0.0, 5.0))
    @settings(max_examples=80, deadline=None)
    def test_delta_nonnegative_and_monotone_in_c(self, groups, c):
        psi, beta, lambdas = groups
        cfg = ConvergenceConfig()
        d0 = theorem1_delta(cfg, psi, beta, lambdas, 0.0)
        d1 = theorem1_delta(cfg, psi, beta, lambdas, c)
        assert d0 >= 0.0
        assert d1 >= d0 - 1e-12

    @given(groups=group_structure(), scale=st.floats(0.1, 0.9))
    @settings(max_examples=60, deadline=None)
    def test_delta_monotone_in_emd(self, groups, scale):
        """Corollary 1: uniformly shrinking every Λ_j cannot increase δ."""
        psi, beta, lambdas = groups
        cfg = ConvergenceConfig()
        full = theorem1_delta(cfg, psi, beta, lambdas, 0.1)
        shrunk = theorem1_delta(cfg, psi, beta, lambdas * scale, 0.1)
        assert shrunk <= full + 1e-12

    @given(
        rho=st.floats(0.05, 0.99, exclude_max=True),
        delta=st.floats(0.0, 0.04),
        gap=st.floats(0.1, 10.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_rounds_to_epsilon_achieves_target(self, rho, delta, gap):
        eps = 0.05
        t = rounds_to_epsilon(rho, delta, gap, eps)
        if t != float("inf"):
            t_int = int(np.ceil(t))
            assert rho**t_int * gap + delta <= eps + 1e-9


class TestPowerControlProperties:
    @given(
        sizes=st.lists(st.floats(1.0, 100.0), min_size=1, max_size=6),
        data=st.data(),
        budget=st.floats(0.1, 100.0),
        noise=st.floats(1e-6, 1.0),
        bound=st.floats(0.1, 100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_solution_feasible_and_not_worse_than_naive(
        self, sizes, data, budget, noise, bound
    ):
        gains = [data.draw(st.floats(0.1, 10.0)) for _ in sizes]
        cfg = AirCompConfig(noise_variance=noise, energy_budget_j=budget)
        result = solve_power_control(sizes, gains, bound, cfg)
        # Feasibility: sigma never exceeds the energy cap.
        assert result.sigma <= result.sigma_cap * (1 + 1e-9)
        assert result.sigma > 0 and result.eta > 0
        # Optimality sanity: not worse than transmitting at the cap with eta=1.
        group = float(np.sum(sizes))
        naive = aggregation_error_term(result.sigma_cap, 1.0, bound, noise, group)
        assert result.error_term <= naive + 1e-9


class TestSchedulerProperties:
    @given(
        group_sizes=st.lists(st.integers(1, 4), min_size=1, max_size=5),
        data=st.data(),
        rounds=st.integers(1, 30),
    )
    @settings(max_examples=60, deadline=None)
    def test_staleness_bounded_by_rounds_between_participations(
        self, group_sizes, data, rounds
    ):
        """Invariants: round counter equals number of aggregations; the
        staleness of an aggregation never exceeds the number of global rounds
        performed since that group last participated (and is 0 on first use)."""
        groups = []
        next_id = 0
        for size in group_sizes:
            groups.append(list(range(next_id, next_id + size)))
            next_id += size
        sched = GroupAsyncScheduler(groups)
        last_participation = {g: 0 for g in range(len(groups))}
        for _ in range(rounds):
            gid = data.draw(st.integers(0, len(groups) - 1))
            for w in groups[gid]:
                sched.receive_ready(w)
            event = sched.complete_aggregation(gid)
            expected_staleness = max(0, event.round_index - last_participation[gid] - 1)
            assert event.staleness == expected_staleness
            last_participation[gid] = event.round_index
        assert sched.current_round == rounds
        assert sum(sched.participation_counts()) == rounds
