"""Property-based tests for the worker-grouping algorithms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AirFedGAConfig,
    GroupingConfig,
    GroupingProblem,
    greedy_grouping,
    random_grouping,
    singleton_grouping,
    tier_grouping,
)
from repro.core.timing import average_round_time, participation_frequencies


@st.composite
def grouping_problems(draw):
    """Random small grouping problems with label-skewed class counts."""
    num_workers = draw(st.integers(2, 16))
    num_classes = draw(st.integers(2, 6))
    xi = draw(st.sampled_from([0.0, 0.2, 0.5, 1.0]))
    rng = np.random.default_rng(draw(st.integers(0, 1000)))
    data_sizes = rng.integers(5, 50, size=num_workers).astype(float)
    # Each worker holds one or two classes (label skew).
    class_counts = np.zeros((num_workers, num_classes))
    for w in range(num_workers):
        classes = rng.choice(num_classes, size=rng.integers(1, 3), replace=False)
        share = data_sizes[w] / len(classes)
        for c in classes:
            class_counts[w, c] = share
    local_times = rng.uniform(1.0, 10.0, size=num_workers)
    problem = GroupingProblem(
        data_sizes=data_sizes,
        class_counts=class_counts,
        local_times=local_times,
        model_dimension=draw(st.sampled_from([10_000, 500_000])),
        config=AirFedGAConfig(grouping=GroupingConfig(xi=xi)),
    )
    return problem, xi


class TestGreedyGroupingProperties:
    @given(problem_and_xi=grouping_problems())
    @settings(max_examples=40, deadline=None)
    def test_partition_and_constraint_invariants(self, problem_and_xi):
        """The greedy grouping always (a) assigns every worker exactly once,
        (b) satisfies the ξ·Δl time-similarity constraint in every group, and
        (c) produces normalized β and ψ vectors."""
        problem, xi = problem_and_xi
        result = greedy_grouping(problem)
        assigned = sorted(w for g in result.groups for w in g)
        assert assigned == list(range(problem.num_workers))

        slack = xi * problem.time_spread()
        for members, group_time in zip(result.groups, result.group_times):
            waits = group_time - result.upload_latency - problem.local_times[list(members)]
            assert np.all(waits <= slack + 1e-9)

        assert result.betas.sum() == pytest.approx(1.0)
        assert result.frequencies.sum() == pytest.approx(1.0)
        assert np.all(result.lambdas >= -1e-12)
        assert np.all(result.lambdas <= 2.0 + 1e-9)
        assert result.tau_max_estimate >= 0.0

    @given(problem_and_xi=grouping_problems())
    @settings(max_examples=25, deadline=None)
    def test_group_count_bounded_and_objective_finite(self, problem_and_xi):
        problem, _ = problem_and_xi
        result = greedy_grouping(problem)
        assert 1 <= result.num_groups <= problem.num_workers
        assert np.isfinite(result.objective)

    @given(problem_and_xi=grouping_problems(), num_groups=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_baseline_strategies_share_invariants(self, problem_and_xi, num_groups):
        problem, _ = problem_and_xi
        for result in (
            tier_grouping(problem, num_groups=num_groups),
            random_grouping(problem, num_groups=num_groups, seed=1),
            singleton_grouping(problem),
        ):
            assigned = sorted(w for g in result.groups for w in g)
            assert assigned == list(range(problem.num_workers))
            assert result.betas.sum() == pytest.approx(1.0)


class TestTimingConsistency:
    @given(problem_and_xi=grouping_problems())
    @settings(max_examples=30, deadline=None)
    def test_round_time_consistent_with_group_times(self, problem_and_xi):
        """The reported ψ and L are consistent with the reported group times."""
        problem, _ = problem_and_xi
        result = greedy_grouping(problem)
        np.testing.assert_allclose(
            result.frequencies, participation_frequencies(result.group_times)
        )
        # The average round time implied by the group times is bounded by the
        # fastest group's completion time.
        round_time = average_round_time(result.group_times)
        assert round_time <= result.group_times.min() + 1e-9
